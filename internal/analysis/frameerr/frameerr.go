// Package frameerr checks that durability-relevant results are not silently
// dropped.
//
// The checkpoint journal and session snapshots only deliver their crash-safety
// guarantees if the final Close/Flush/Sync error is observed (that is where
// delayed write errors surface) and if the slice returned by
// checkpoint.AppendFrame is kept (the function returns the extended buffer;
// discarding it discards the frame). The analyzer flags, in all non-test
// files:
//
//   - expression statements calling a method named Close, Flush, or Sync
//     that returns an error, with the error discarded
//   - expression statements calling checkpoint.AppendFrame, whose []byte
//     result is the appended journal
//
// An explicit `_ = f.Close()` is the sanctioned way to say "best effort, and
// I mean it" on read-only paths, and `defer f.Close()` is exempt because Go
// offers no way to check a deferred error without a named-result wrapper —
// write paths must Close explicitly before reporting success.
package frameerr

import (
	"go/ast"
	"go/types"

	"mdes/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "frameerr",
	Doc:  "reports discarded Close/Flush/Sync errors and discarded checkpoint.AppendFrame results",
	Run:  run,
}

var methodNames = map[string]bool{"Close": true, "Flush": true, "Sync": true}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(es.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			checkCall(pass, call)
			return true
		})
	}
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	if fn.Name() == "AppendFrame" && fn.Pkg() != nil &&
		analysis.PkgPathMatches(fn.Pkg().Path(), []string{"internal/checkpoint", "checkpoint"}) {
		pass.Reportf(call.Pos(), "result of %s.AppendFrame is discarded: the returned slice is the journal with the frame appended", fn.Pkg().Name())
		return
	}
	if !methodNames[fn.Name()] {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || !returnsError(sig) {
		return
	}
	pass.Reportf(call.Pos(), "error from %s is discarded; check it or assign to _ explicitly", fn.Name())
}

func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	last := res.At(res.Len() - 1).Type()
	return types.Identical(last, types.Universe.Lookup("error").Type())
}
