package persist

import (
	"bufio"
	"io"
	"os"

	"checkpoint"
	"faultfs"
)

type journal struct {
	buf []byte
	w   *bufio.Writer
	f   *os.File
}

func (j *journal) bad(payload []byte) {
	checkpoint.AppendFrame(j.buf, payload) // want `result of checkpoint.AppendFrame is discarded`
	j.w.Flush()                            // want `error from Flush is discarded`
	j.f.Sync()                             // want `error from Sync is discarded`
	j.f.Close()                            // want `error from Close is discarded`
}

// --- non-flagging shapes -------------------------------------------------

func (j *journal) good(payload []byte) error {
	j.buf = checkpoint.AppendFrame(j.buf, payload)
	if err := j.w.Flush(); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	return j.f.Close()
}

// Explicit discard is the sanctioned best-effort form on read paths.
func readAll(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	b, err := io.ReadAll(f)
	_ = f.Close()
	return b, err
}

// Deferred Close is exempt: there is no way to check it without a wrapper.
func readDeferred(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// Methods named Flush that return nothing (csv.Writer-style) are not flagged.
type voidFlusher struct{}

func (voidFlusher) Flush() {}

func useVoid(v voidFlusher) {
	v.Flush()
}

// --- faultfs handles ------------------------------------------------------
// Injected-filesystem handles carry the same durability contract as *os.File:
// the Sync/Close error is where a simulated (or real) write failure surfaces.

func faultyAppend(f faultfs.File, frame []byte) error {
	if _, err := f.Write(frame); err != nil {
		return err
	}
	f.Sync()  // want `error from Sync is discarded`
	f.Close() // want `error from Close is discarded`
	return nil
}

func faultyAppendGood(f faultfs.File, frame []byte) error {
	if _, err := f.Write(frame); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

// Read-only audit: explicit discard stays sanctioned for faultfs handles too.
func auditRecords(f faultfs.File) ([]byte, error) {
	b, err := io.ReadAll(f)
	_ = f.Close()
	return b, err
}
