// Package faultfs is a miniature stand-in for the repo's internal/faultfs:
// the File interface is the handle every durable artefact is written
// through, so discarded Sync/Close errors on it are exactly the bugs
// frameerr exists to catch.
package faultfs

import "io"

type File interface {
	io.Reader
	io.Writer
	io.Closer
	Sync() error
	Truncate(size int64) error
	Seek(offset int64, whence int) (int64, error)
	Name() string
}

type FS interface {
	OpenFile(name string, flag int, perm uint32) (File, error)
	Rename(oldpath, newpath string) error
	SyncDir(dir string) error
}
