package frameerr

import (
	"testing"

	"mdes/internal/analysis/analyzertest"
)

func TestFrameerr(t *testing.T) {
	analyzertest.Run(t, "testdata/src", Analyzer, "persist")
}
