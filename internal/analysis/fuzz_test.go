package analysis

import (
	"fmt"
	"strings"
	"testing"
)

// FuzzWaiverDirective round-trips the //mdes:allow parser: any directive the
// parser accepts must re-render to text that parses back to the identical
// directive list. This pins the parser against crafted comments — reasons
// containing parentheses, directives jammed together, near-miss prefixes —
// without enumerating them by hand.
func FuzzWaiverDirective(f *testing.F) {
	f.Add("//mdes:allow(noalloc) heap fallback")
	f.Add("//mdes:allow(noalloc) a //mdes:allow(detrand) b")
	f.Add("//mdes:allow(lockcall)")
	f.Add("//mdes:allow(x) reason with (parens) and //mdes:allow-ish text")
	f.Add("// prose mentioning //mdes:allow(noalloc) is not a waiver")
	f.Add("//mdes:allow()")
	f.Add("//mdes:allow(unclosed")
	f.Add("//mdes:allow(a)//mdes:allow(b)")

	f.Fuzz(func(t *testing.T, text string) {
		ds := ParseAllows(text)
		for _, d := range ds {
			// Invariants of any accepted directive.
			if d.Analyzer == "" {
				t.Fatalf("ParseAllows(%q) produced an empty analyzer name", text)
			}
			if strings.ContainsAny(d.Analyzer, "() \t") {
				t.Fatalf("ParseAllows(%q) produced malformed analyzer %q", text, d.Analyzer)
			}
			if strings.Contains(d.Reason, "//mdes:allow(") {
				t.Fatalf("ParseAllows(%q): reason %q swallowed a following directive", text, d.Reason)
			}
			if d.Reason != strings.TrimSpace(d.Reason) {
				t.Fatalf("ParseAllows(%q): reason %q is not trimmed", text, d.Reason)
			}
		}
		if len(ds) == 0 {
			return
		}
		// Re-render and re-parse: the directive list must survive unchanged.
		var b strings.Builder
		for _, d := range ds {
			if b.Len() == 0 {
				b.WriteString("//mdes:allow(")
			} else {
				b.WriteString(" //mdes:allow(")
			}
			fmt.Fprintf(&b, "%s) %s", d.Analyzer, d.Reason)
		}
		again := ParseAllows(strings.TrimRight(b.String(), " "))
		if len(again) != len(ds) {
			t.Fatalf("round trip of %q changed directive count: %v -> %v", text, ds, again)
		}
		for i := range ds {
			if again[i] != ds[i] {
				t.Fatalf("round trip of %q changed directive %d: %+v -> %+v", text, i, ds[i], again[i])
			}
		}
	})
}
