// Package a is the goloop fixture: goroutines with and without visible
// lifecycle evidence, and timers with and without a deferred Stop.
package a

import (
	"context"
	"sync"
	"time"
)

type server struct {
	quit chan struct{}
	wg   sync.WaitGroup
}

// spin loops forever with no way to stop it.
func spin() {
	n := 0
	for {
		n++
	}
}

func (s *server) start(ctx context.Context) {
	go spin() // want `goroutine has no visible bounded lifecycle`

	go func() { // want `goroutine has no visible bounded lifecycle`
		for {
		}
	}()

	// Context argument: bounded.
	go s.pump(ctx)

	// Context captured and checked in the body: bounded.
	go func() {
		for ctx.Err() == nil {
		}
	}()

	// WaitGroup: bounded.
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
		}
	}()

	// Channel the spawner controls: bounded.
	go func() {
		for {
			select {
			case <-s.quit:
				return
			default:
			}
		}
	}()

	// Evidence through a same-package callee: bounded.
	go s.drain()

	// Declared helper with no evidence anywhere: flagged.
	go spinToo() // want `goroutine has no visible bounded lifecycle`
}

func (s *server) pump(ctx context.Context) {
	for ctx.Err() == nil {
	}
}

func (s *server) drain() {
	<-s.quit
}

func spinToo() {
	for {
	}
}

// tick leaves its ticker running on the early-return path.
func (s *server) tick(d time.Duration) {
	t := time.NewTicker(d) // want `time.NewTicker is not stopped on every exit path`
	for {
		select {
		case <-t.C:
		case <-s.quit:
			return
		}
	}
}

// tickStopped defers the Stop: clean.
func (s *server) tickStopped(d time.Duration) {
	t := time.NewTicker(d)
	defer t.Stop()
	for range t.C {
		return
	}
}

// timerHandedOff escapes to another owner: clean here.
func timerHandedOff(d time.Duration) *time.Timer {
	t := time.NewTimer(d)
	return t
}

// timerDeferredCleanup stops through a deferred closure: clean.
func timerDeferredCleanup(d time.Duration) {
	t := time.NewTimer(d)
	defer func() {
		t.Stop()
	}()
	<-t.C
}
