package goloop

import (
	"testing"

	"mdes/internal/analysis/analyzertest"
)

func TestGoloop(t *testing.T) {
	analyzertest.Run(t, "testdata/src", Analyzer, "a")
}
