// Package goloop guards goroutine hygiene in non-test code: every `go`
// statement must have a bounded lifecycle, and timers/tickers created inside
// a function must be stopped on every exit path.
//
// A goroutine counts as bounded when the analyzer can see lifecycle evidence:
//
//   - a context.Context flows into the spawned call as an argument, or the
//     body (transitively through same-package callees) selects on ctx.Done()
//     or checks ctx.Err();
//   - the body signals a sync.WaitGroup (Done/Wait);
//   - the body performs any channel operation — receive, send, select, range,
//     or close. A goroutine parked on a channel is under the spawner's
//     control: closing or draining the channel releases it.
//
// Anything else — most commonly `go f()` where f loops forever on its own —
// is flagged. Deliberately unbounded goroutines (process-lifetime loops)
// carry //mdes:allow(goloop) waivers naming the shutdown story instead.
//
// The timer rule is separate and applies to every function, not only
// goroutine bodies: a `t := time.NewTimer(...)` / `time.NewTicker(...)` whose
// handle stays local to the function must have a `defer t.Stop()` in that
// same function, otherwise an early return leaves the timer armed (and a
// ticker leaks its goroutine permanently). Handles that escape — returned,
// stored in a struct, passed to another function — are the owner's problem
// and are skipped.
package goloop

import (
	"go/ast"
	"go/types"

	"mdes/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "goloop",
	Doc:  "reports goroutines without a bounded lifecycle and timers/tickers without a deferred Stop",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	bounded := boundedClosure(pass)
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if gs, ok := n.(*ast.GoStmt); ok {
				checkGo(pass, bounded, gs)
			}
			return true
		})
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkTimers(pass, fd.Body)
			}
		}
	}
	return nil
}

// checkGo reports the go statement unless lifecycle evidence is visible.
func checkGo(pass *analysis.Pass, bounded map[*types.Func]bool, gs *ast.GoStmt) {
	call := gs.Call
	// A context argument is evidence regardless of what the callee is.
	for _, arg := range call.Args {
		if t := pass.TypeOf(arg); t != nil && analysis.IsContextType(t) {
			return
		}
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		if hasEvidence(pass, bounded, fun.Body) {
			return
		}
	default:
		if fn := analysis.CalleeFunc(pass.TypesInfo, call); fn != nil {
			if bounded[fn] {
				return
			}
			// Method values on other packages' types (e.g. wg.Wait,
			// srv.Shutdown) whose receiver is lifecycle machinery.
			if isLifecycleCall(pass, call) {
				return
			}
		}
	}
	pass.Reportf(gs.Pos(), "goroutine has no visible bounded lifecycle: tie it to a context, a sync.WaitGroup, or a channel the spawner controls")
}

// boundedClosure computes the same-package functions whose bodies contain
// lifecycle evidence, directly or through same-package calls — a worklist
// fixpoint like lockcall's ioClosure.
func boundedClosure(pass *analysis.Pass) map[*types.Func]bool {
	bodies := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				bodies[fn] = fd
			}
		}
	}
	bounded := map[*types.Func]bool{}
	for changed := true; changed; {
		changed = false
		for fn, fd := range bodies {
			if bounded[fn] {
				continue
			}
			// A context parameter is evidence by itself: the callee can only
			// have received it from the spawner.
			sig := fn.Type().(*types.Signature)
			hasCtx := false
			for i := 0; i < sig.Params().Len(); i++ {
				if analysis.IsContextType(sig.Params().At(i).Type()) {
					hasCtx = true
					break
				}
			}
			if hasCtx || hasEvidence(pass, bounded, fd.Body) {
				bounded[fn] = true
				changed = true
			}
		}
	}
	return bounded
}

// hasEvidence reports whether the body (including nested function literals)
// contains direct lifecycle evidence or a call to a same-package function
// already known to be bounded.
func hasEvidence(pass *analysis.Pass, bounded map[*types.Func]bool, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				found = true
			}
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.RangeStmt:
			if t := pass.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.CallExpr:
			if analysis.IsBuiltinCall(pass.TypesInfo, n, "close") {
				found = true
				return false
			}
			for _, arg := range n.Args {
				if t := pass.TypeOf(arg); t != nil && analysis.IsContextType(t) {
					found = true
					return false
				}
			}
			if isLifecycleCall(pass, n) {
				found = true
				return false
			}
			if fn := analysis.CalleeFunc(pass.TypesInfo, n); fn != nil && bounded[fn] {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}

// isLifecycleCall reports whether call is a method call that by itself proves
// lifecycle coupling: WaitGroup.Done/Wait, or Err/Done/Deadline on a context.
func isLifecycleCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "sync" && (fn.Name() == "Done" || fn.Name() == "Wait") {
		return true
	}
	if t := pass.TypeOf(sel.X); t != nil && analysis.IsContextType(t) {
		switch fn.Name() {
		case "Done", "Err", "Deadline":
			return true
		}
	}
	return false
}

// checkTimers enforces the deferred-Stop rule for every function-shaped body
// in the file: the FuncDecl body and each FuncLit body are independent
// scopes (a defer inside a nested literal does not run when the outer
// function returns, and vice versa).
func checkTimers(pass *analysis.Pass, body *ast.BlockStmt) {
	scopes := []*ast.BlockStmt{body}
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			scopes = append(scopes, lit.Body)
		}
		return true
	})
	for _, scope := range scopes {
		checkTimerScope(pass, scope)
	}
}

// inspectScope walks the nodes that belong to scope itself, not to nested
// function literals.
func inspectScope(scope *ast.BlockStmt, visit func(ast.Node) bool) {
	ast.Inspect(scope, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != scope {
			return false
		}
		return visit(n)
	})
}

func checkTimerScope(pass *analysis.Pass, scope *ast.BlockStmt) {
	// Collect `v := time.NewTimer(...)` / `time.NewTicker(...)` locals.
	type timer struct {
		obj  types.Object
		kind string
		pos  ast.Node
	}
	var timers []timer
	inspectScope(scope, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeFunc(pass.TypesInfo, call)
		if fn == nil || !analysis.FuncInPkg(fn, "time") {
			return true
		}
		if fn.Name() != "NewTimer" && fn.Name() != "NewTicker" {
			return true
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		if obj == nil {
			return true
		}
		timers = append(timers, timer{obj: obj, kind: fn.Name(), pos: as})
		return true
	})
	if len(timers) == 0 {
		return
	}
	usesObj := func(e ast.Expr, obj types.Object) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && (pass.TypesInfo.Uses[id] == obj || pass.TypesInfo.Defs[id] == obj) {
				found = true
			}
			return !found
		})
		return found
	}
	for _, t := range timers {
		stopped, escapes := false, false
		inspectScope(scope, func(n ast.Node) bool {
			if stopped || escapes {
				return false
			}
			switch n := n.(type) {
			case *ast.DeferStmt:
				// defer t.Stop()
				if sel, ok := ast.Unparen(n.Call.Fun).(*ast.SelectorExpr); ok &&
					sel.Sel.Name == "Stop" && usesObj(sel.X, t.obj) {
					stopped = true
					return false
				}
				// The handle may also be captured by a deferred cleanup
				// closure; treat that as an escape (the closure owns it).
				if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
					for _, stmt := range lit.Body.List {
						if es, ok := stmt.(*ast.ExprStmt); ok {
							if c, ok := ast.Unparen(es.X).(*ast.CallExpr); ok {
								if sel, ok := ast.Unparen(c.Fun).(*ast.SelectorExpr); ok &&
									sel.Sel.Name == "Stop" && usesObj(sel.X, t.obj) {
									stopped = true
									return false
								}
							}
						}
					}
				}
			case *ast.ReturnStmt:
				for _, r := range n.Results {
					if usesObj(r, t.obj) {
						escapes = true
						return false
					}
				}
			case *ast.CallExpr:
				// Passed as an argument (not a method call on the handle
				// itself): ownership moves.
				for _, arg := range n.Args {
					if usesObj(arg, t.obj) {
						escapes = true
						return false
					}
				}
			case *ast.AssignStmt:
				// Re-assigned into a field, map, or another variable:
				// ownership moves.
				for i, rhs := range n.Rhs {
					if ident, ok := rhs.(*ast.Ident); ok && (pass.TypesInfo.Uses[ident] == t.obj) {
						_ = i
						escapes = true
						return false
					}
				}
			case *ast.SendStmt:
				if usesObj(n.Value, t.obj) {
					escapes = true
					return false
				}
			case *ast.CompositeLit:
				for _, el := range n.Elts {
					if usesObj(el, t.obj) {
						escapes = true
						return false
					}
				}
			}
			return true
		})
		if !stopped && !escapes {
			pass.Reportf(t.pos.Pos(), "time.%s is not stopped on every exit path: defer its Stop right after creation (or hand the handle off explicitly)", t.kind)
		}
	}
}
