// Package analyzertest runs an analyzer over source fixtures and checks its
// diagnostics against expectations written in the fixtures themselves — a
// stdlib-only stand-in for golang.org/x/tools/go/analysis/analysistest.
//
// Expectations are trailing comments of the form
//
//	code() // want `regexp`
//	code() // want `first` `second`
//
// Every diagnostic reported on a line must match one of that line's want
// patterns, and every want pattern must be matched by some diagnostic on its
// line. Lines without a want comment must produce no diagnostics.
package analyzertest

import (
	"go/token"
	"regexp"
	"strings"
	"testing"

	"mdes/internal/analysis"
)

// want patterns are backquoted or double-quoted strings after "// want".
var wantRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	raw     string
	matched bool
}

// Run loads each fixture package at srcRoot/<path>, applies the analyzer, and
// reports mismatches between diagnostics and // want expectations through t.
func Run(t *testing.T, srcRoot string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	for _, path := range paths {
		pkg, err := analysis.LoadFixture(srcRoot, path)
		if err != nil {
			t.Errorf("loading fixture %s: %v", path, err)
			continue
		}
		checkPackage(t, a, pkg, path)
	}
}

func checkPackage(t *testing.T, a *analysis.Analyzer, pkg *analysis.Package, path string) {
	t.Helper()
	expects := collectWants(t, pkg)

	pass := pkg.NewPass(a)
	if err := a.Run(pass); err != nil {
		t.Errorf("%s: analyzer %s failed: %v", path, a.Name, err)
		return
	}

	for _, d := range pass.Diagnostics() {
		pos := pkg.Fset.Position(d.Pos)
		if e := matchExpectation(expects, pos, d.Message); e != nil {
			e.matched = true
			continue
		}
		t.Errorf("%s: unexpected diagnostic: %s: %s", path, pos, d.Message)
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s: no diagnostic at %s:%d matching %q", path, e.file, e.line, e.raw)
		}
	}
}

func matchExpectation(expects []*expectation, pos token.Position, msg string) *expectation {
	for _, e := range expects {
		if !e.matched && e.file == pos.Filename && e.line == pos.Line && e.pattern.MatchString(msg) {
			return e
		}
	}
	return nil
}

func collectWants(t *testing.T, pkg *analysis.Package) []*expectation {
	t.Helper()
	var expects []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				i := strings.Index(text, "want ")
				if i < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(text[i+len("want "):], -1) {
					raw := m[1]
					if raw == "" {
						raw = m[2]
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Errorf("%s: bad want pattern %q: %v", pos, raw, err)
						continue
					}
					expects = append(expects, &expectation{
						file:    pos.Filename,
						line:    pos.Line,
						pattern: re,
						raw:     raw,
					})
				}
			}
		}
	}
	return expects
}
