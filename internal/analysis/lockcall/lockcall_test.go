package lockcall

import (
	"testing"

	"mdes/internal/analysis/analyzertest"
)

func TestLockcall(t *testing.T) {
	saved := Packages
	Packages = append(append([]string{}, Packages...), "serve", "cluster")
	defer func() { Packages = saved }()

	analyzertest.Run(t, "testdata/src", Analyzer, "serve", "cluster", "elsewhere")
}
