// Package lockcall guards the server's latency and liveness invariants: a
// sync.Mutex/RWMutex in internal/serve protects in-memory session state, and
// one in internal/cluster protects ring/membership state; neither must ever
// be held across blocking operations (in cluster in particular, no network
// I/O under a membership lock — a slow peer would stall ownership lookups
// fleet-wide).
//
// Within the configured packages, after a mu.Lock()/mu.RLock() and before the
// matching Unlock in the same block (a deferred Unlock holds to function
// end), the analyzer flags:
//
//   - channel sends
//   - calls into I/O packages (os, net, net/http, io, bufio), directly or
//     through a same-package helper that transitively performs such I/O
//     (computed by a package-local call-graph fixpoint)
//   - dynamic invocations of function-typed values (user callbacks)
//
// The analysis is per-block and syntactic: it does not track locks across
// function boundaries, and sync.Mutex.TryLock is ignored (a known, documented
// limitation). Intentional hold-across-I/O sites — e.g. snapshot load during
// session creation, where the registry lock is what makes creation atomic —
// carry //mdes:allow(lockcall) waivers explaining why.
package lockcall

import (
	"go/ast"
	"go/types"

	"mdes/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockcall",
	Doc:  "reports blocking operations (channel sends, I/O, callbacks) performed while a sync mutex is held",
	Run:  run,
}

// Packages are the import-path suffixes the analyzer applies to. faultnet's
// fault decisions run inside every intercepted round trip, so holding its
// mutex across I/O would serialize the very traffic it perturbs.
var Packages = []string{"internal/serve", "internal/cluster", "internal/faultnet"}

// ioPkgs are the packages whose calls count as file/network I/O.
var ioPkgs = map[string]bool{
	"os":       true,
	"net":      true,
	"net/http": true,
	"io":       true,
	"bufio":    true,
}

func run(pass *analysis.Pass) error {
	if !analysis.PkgPathMatches(pass.Pkg.Path(), Packages) {
		return nil
	}
	ioFuncs := ioClosure(pass)
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				scanBlock(pass, ioFuncs, fd.Body.List, map[string]bool{})
			}
		}
	}
	return nil
}

// lockOp classifies a statement as a mutex acquisition or release and
// returns the printed receiver expression ("s.reg.mu").
func lockOp(pass *analysis.Pass, stmt ast.Stmt) (recv string, acquire, release bool) {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return "", false, false
	}
	return lockCall(pass, es.X)
}

func lockCall(pass *analysis.Pass, e ast.Expr) (recv string, acquire, release bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", false, false
	}
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	recv = types.ExprString(sel.X)
	switch fn.Name() {
	case "Lock", "RLock":
		return recv, true, false
	case "Unlock", "RUnlock":
		return recv, false, true
	}
	return "", false, false
}

// scanBlock walks one statement list tracking which mutexes are held. Nested
// control-flow bodies are scanned recursively with a copy of the hold set.
func scanBlock(pass *analysis.Pass, ioFuncs map[*types.Func]bool, stmts []ast.Stmt, held map[string]bool) {
	cur := map[string]bool{}
	for k := range held {
		cur[k] = true
	}
	for _, stmt := range stmts {
		if recv, acq, rel := lockOp(pass, stmt); acq || rel {
			if acq {
				cur[recv] = true
			} else {
				delete(cur, recv)
			}
			continue
		}
		if ds, ok := stmt.(*ast.DeferStmt); ok {
			// `defer mu.Unlock()` keeps the lock to function end: the hold
			// set is unchanged. Other defers run after the block, outside
			// the hold span, so they are not scanned.
			if _, _, rel := lockCall(pass, ds.Call); rel {
				continue
			}
			continue
		}
		scanStmt(pass, ioFuncs, stmt, cur)
	}
}

// scanStmt checks one statement (and its nested blocks) for blocking
// operations under the currently-held mutexes.
func scanStmt(pass *analysis.Pass, ioFuncs map[*types.Func]bool, stmt ast.Stmt, held map[string]bool) {
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		scanBlock(pass, ioFuncs, s.List, held)
		return
	case *ast.IfStmt:
		// The init statement hides calls just as well as the condition does:
		// `if err := saveSnapshot(...); err != nil { ... }`.
		if s.Init != nil {
			checkLeaf(pass, ioFuncs, s.Init, held)
		}
		checkLeaf(pass, ioFuncs, s.Cond, held)
		scanBlock(pass, ioFuncs, s.Body.List, held)
		if s.Else != nil {
			scanStmt(pass, ioFuncs, s.Else, held)
		}
		return
	case *ast.ForStmt:
		if s.Init != nil {
			checkLeaf(pass, ioFuncs, s.Init, held)
		}
		checkLeaf(pass, ioFuncs, s.Cond, held)
		if s.Post != nil {
			checkLeaf(pass, ioFuncs, s.Post, held)
		}
		scanBlock(pass, ioFuncs, s.Body.List, held)
		return
	case *ast.RangeStmt:
		checkLeaf(pass, ioFuncs, s.X, held)
		scanBlock(pass, ioFuncs, s.Body.List, held)
		return
	case *ast.SwitchStmt:
		if s.Init != nil {
			checkLeaf(pass, ioFuncs, s.Init, held)
		}
		checkLeaf(pass, ioFuncs, s.Tag, held)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				scanBlock(pass, ioFuncs, cc.Body, held)
			}
		}
		return
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			checkLeaf(pass, ioFuncs, s.Init, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				scanBlock(pass, ioFuncs, cc.Body, held)
			}
		}
		return
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				scanBlock(pass, ioFuncs, cc.Body, held)
			}
		}
		return
	case *ast.GoStmt:
		// A goroutine launched while the lock is held does not itself run
		// under the lock.
		return
	}
	if len(held) > 0 {
		checkLeaf(pass, ioFuncs, stmt, held)
	}
}

// anyHeld returns a deterministic representative of the held mutexes for use
// in diagnostics.
func anyHeld(held map[string]bool) string {
	best := ""
	for k := range held {
		if best == "" || k < best {
			best = k
		}
	}
	return best
}

// checkLeaf inspects a leaf statement or expression for blocking operations.
// Function literal bodies are skipped: they execute when called, not where
// they are written.
func checkLeaf(pass *analysis.Pass, ioFuncs map[*types.Func]bool, n ast.Node, held map[string]bool) {
	if len(held) == 0 || n == nil {
		return
	}
	mu := anyHeld(held)
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send while %s is held", mu)
		case *ast.CallExpr:
			checkCallUnderLock(pass, ioFuncs, n, mu)
		}
		return true
	})
}

func checkCallUnderLock(pass *analysis.Pass, ioFuncs map[*types.Func]bool, call *ast.CallExpr, mu string) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn != nil {
		pkg := fn.Pkg()
		if pkg == nil {
			return
		}
		switch {
		case ioPkgs[pkg.Path()]:
			pass.Reportf(call.Pos(), "call to %s.%s while %s is held (file/network I/O)", pkg.Name(), fn.Name(), mu)
		case pkg == pass.Pkg && ioFuncs[fn]:
			pass.Reportf(call.Pos(), "call to %s while %s is held (%s performs file/network I/O)", fn.Name(), mu, fn.Name())
		}
		return
	}
	// No static callee: builtin, conversion, or a function-typed value.
	fun := ast.Unparen(call.Fun)
	if id, ok := fun.(*ast.Ident); ok {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			return
		}
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || tv.IsType() {
		return // conversion
	}
	if _, ok := tv.Type.Underlying().(*types.Signature); ok {
		pass.Reportf(call.Pos(), "dynamic callback invocation while %s is held", mu)
	}
}

// ioClosure computes the set of package-local functions that transitively
// perform I/O: a worklist fixpoint over the package's internal call graph.
func ioClosure(pass *analysis.Pass) map[*types.Func]bool {
	// bodies maps each package function to the functions it calls.
	bodies := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				bodies[fn] = fd
			}
		}
	}
	io := map[*types.Func]bool{}
	changed := true
	for changed {
		changed = false
		for fn, fd := range bodies {
			if io[fn] {
				continue
			}
			if callsIO(pass, fd, io) {
				io[fn] = true
				changed = true
			}
		}
	}
	return io
}

func callsIO(pass *analysis.Pass, fd *ast.FuncDecl, io map[*types.Func]bool) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if ioPkgs[fn.Pkg().Path()] || (fn.Pkg() == pass.Pkg && io[fn]) {
			found = true
			return false
		}
		return true
	})
	return found
}
