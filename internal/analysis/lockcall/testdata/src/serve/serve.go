package serve

import (
	"os"
	"sync"
)

type session struct {
	mu    sync.Mutex
	state int
	out   chan int
	hook  func(int)
}

// writeState is a same-package helper that performs file I/O; the fixpoint
// marks it, so calling it under a lock is as bad as calling os directly.
func writeState(v int) error {
	return os.WriteFile("state", []byte{byte(v)}, 0o644)
}

func (s *session) bad() {
	s.mu.Lock()
	s.state++
	s.out <- s.state        // want `channel send while s.mu is held`
	_ = os.Remove("stale")  // want `call to os.Remove while s.mu is held \(file/network I/O\)`
	_ = writeState(s.state) // want `call to writeState while s.mu is held`
	s.hook(s.state)         // want `dynamic callback invocation while s.mu is held`
	s.mu.Unlock()
}

func (s *session) badDeferred() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state > 0 {
		_ = os.Remove("stale") // want `call to os.Remove while s.mu is held`
	}
}

// Calls hidden in an if/for/switch init statement are still under the lock.
func (s *session) badInit() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := writeState(s.state); err != nil { // want `call to writeState while s.mu is held`
		s.state = 0
	}
	switch err := os.Remove("stale"); err { // want `call to os.Remove while s.mu is held`
	case nil:
	}
	for i := lineCount(); i > 0; i-- { // want `call to lineCount while s.mu is held`
		s.state--
	}
}

// lineCount is transitively I/O via writeState.
func lineCount() int {
	_ = writeState(0)
	return 1
}

// --- non-flagging shapes -------------------------------------------------

func (s *session) good() {
	s.mu.Lock()
	s.state++
	s.mu.Unlock()
	// After the unlock, everything is allowed again.
	s.out <- s.state
	_ = writeState(s.state)
	s.hook(s.state)
}

func (s *session) goodAsync() {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := s.state
	// The goroutine body runs after we return; it is not under the lock.
	go func() {
		_ = writeState(v)
	}()
}

func (s *session) waived() {
	s.mu.Lock()
	defer s.mu.Unlock()
	//mdes:allow(lockcall) creation must be atomic: the snapshot read is part of the critical section
	_ = writeState(s.state)
}

// Lock-free functions are never flagged.
func (s *session) free() {
	_ = writeState(s.state)
	s.out <- 1
}
