// Package elsewhere is outside the configured package set: holding a lock
// across I/O here is someone else's problem.
package elsewhere

import (
	"os"
	"sync"
)

type T struct{ mu sync.Mutex }

func (t *T) Held() {
	t.mu.Lock()
	defer t.mu.Unlock()
	_ = os.Remove("whatever")
}
