package cluster

import (
	"net/http"
	"sync"
)

// membership mirrors internal/cluster's shape: a mutex guarding peer state,
// with change callbacks and peer probes that must never run under it.
type membership struct {
	mu       sync.RWMutex
	states   map[string]int
	onChange func(string, int)
}

// probe performs network I/O; the fixpoint marks it, so calling it under the
// membership lock is as bad as calling net/http directly.
func probe(url string) bool {
	resp, err := http.Get(url)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return true
}

func (m *membership) bad(peer string) {
	m.mu.Lock()
	if probe(peer) { // want `call to probe while m.mu is held`
		m.states[peer] = 1
	}
	m.onChange(peer, m.states[peer]) // want `dynamic callback invocation while m.mu is held`
	m.mu.Unlock()
}

func (m *membership) badRead(peer string) int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	_, _ = http.Get(peer) // want `call to http.Get while m.mu is held \(file/network I/O\)`
	return m.states[peer]
}

// --- non-flagging shapes -------------------------------------------------

// good takes the lock only to mutate state, then fires probes and callbacks
// against a copy after releasing it — the internal/cluster idiom.
func (m *membership) good(peer string) {
	alive := probe(peer)
	m.mu.Lock()
	if alive {
		m.states[peer] = 1
	} else {
		m.states[peer] = 2
	}
	st := m.states[peer]
	cb := m.onChange
	m.mu.Unlock()
	cb(peer, st)
}

// snapshot under RLock is pure map copying: no I/O, nothing to flag.
func (m *membership) snapshot() map[string]int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make(map[string]int, len(m.states))
	for k, v := range m.states {
		out[k] = v
	}
	return out
}
