package noalloc

import (
	"testing"

	"mdes/internal/analysis/analyzertest"
)

func TestNoalloc(t *testing.T) {
	analyzertest.Run(t, "testdata/src", Analyzer, "a")
}
