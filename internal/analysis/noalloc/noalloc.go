// Package noalloc checks that functions annotated //mdes:noalloc contain no
// allocating constructs.
//
// The repo's hot paths (LSTM/attention StepWS and StepBackwardWS, Stream.Push)
// are benchmarked at 0 allocs/op; this analyzer turns that property from an
// AllocsPerRun pin — which only fires for the exact benchmark input — into a
// structural guarantee over the whole function body. Flagged constructs:
//
//   - make and new
//   - composite literals of slice or map type, and &T{...} literals whose
//     address may escape
//   - append without pre-allocated-capacity evidence (the destination must be
//     a reslice like buf[:0], either inline or assigned earlier in the
//     function)
//   - string concatenation and string<->[]byte/[]rune conversions
//   - calls into fmt
//   - interface boxing at call sites (passing a concrete value to an
//     interface-typed parameter)
//   - function literals that capture enclosing variables
//
// Cold branches (nil-workspace fallbacks, error paths) are waived in place
// with //mdes:allow(noalloc) comments.
package noalloc

import (
	"go/ast"
	"go/types"

	"mdes/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "noalloc",
	Doc:  "reports allocating constructs inside functions annotated //mdes:noalloc",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !analysis.HasDoc(fd.Doc, "mdes:noalloc") {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	resliced := reslicedVars(pass, fd.Body)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, name, n, resliced)
		case *ast.CompositeLit:
			switch pass.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				pass.Reportf(n.Pos(), "slice literal allocates in noalloc function %s", name)
			case *types.Map:
				pass.Reportf(n.Pos(), "map literal allocates in noalloc function %s", name)
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "&composite literal may escape to the heap in noalloc function %s", name)
				}
			}
		case *ast.BinaryExpr:
			if n.Op.String() == "+" && isNonConstString(pass, n) {
				pass.Reportf(n.Pos(), "string concatenation allocates in noalloc function %s", name)
			}
		case *ast.FuncLit:
			if captures(pass, fd, n) {
				pass.Reportf(n.Pos(), "closure captures enclosing variables and allocates in noalloc function %s", name)
			}
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, name string, call *ast.CallExpr, resliced map[types.Object]bool) {
	info := pass.TypesInfo
	switch {
	case analysis.IsBuiltinCall(info, call, "make"):
		pass.Reportf(call.Pos(), "make allocates in noalloc function %s", name)
		return
	case analysis.IsBuiltinCall(info, call, "new"):
		pass.Reportf(call.Pos(), "new allocates in noalloc function %s", name)
		return
	case analysis.IsBuiltinCall(info, call, "append"):
		if !hasCapEvidence(info, call.Args[0], resliced) {
			pass.Reportf(call.Pos(), "append without preallocated-cap evidence in noalloc function %s (reslice the destination, e.g. buf[:0])", name)
		}
		return
	}

	if conv, ok := allocatingConversion(pass, call); ok {
		pass.Reportf(call.Pos(), "%s conversion allocates in noalloc function %s", conv, name)
		return
	}

	if fn := analysis.CalleeFunc(info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), "call to fmt.%s allocates in noalloc function %s", fn.Name(), name)
	}

	checkBoxing(pass, name, call)
}

// hasCapEvidence reports whether the append destination is visibly resliced
// from pre-allocated storage: either an inline slice expression (buf[:0]) or
// a variable assigned from one earlier in the function.
func hasCapEvidence(info *types.Info, dst ast.Expr, resliced map[types.Object]bool) bool {
	switch dst := ast.Unparen(dst).(type) {
	case *ast.SliceExpr:
		return true
	case *ast.Ident:
		if obj := info.Uses[dst]; obj != nil {
			return resliced[obj]
		}
	}
	return false
}

// reslicedVars collects variables assigned (anywhere in the body) from a
// slice expression — `buf := s.scratch[:0]` marks buf as capacity-evidenced.
func reslicedVars(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if _, ok := ast.Unparen(rhs).(*ast.SliceExpr); !ok {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				out[obj] = true
			} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

func isNonConstString(pass *analysis.Pass, e *ast.BinaryExpr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value != nil { // constant-folded concatenation is free
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

// allocatingConversion detects string([]byte), []byte(string), string([]rune)
// and []rune(string) conversions.
func allocatingConversion(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return "", false
	}
	to := tv.Type.Underlying()
	from := pass.TypeOf(call.Args[0])
	if from == nil {
		return "", false
	}
	fromU := from.Underlying()
	if isString(to) && (isByteOrRuneSlice(fromU) != "") {
		return isByteOrRuneSlice(fromU) + "->string", true
	}
	if s := isByteOrRuneSlice(to); s != "" && isString(fromU) {
		return "string->" + s, true
	}
	return "", false
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) string {
	s, ok := t.(*types.Slice)
	if !ok {
		return ""
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	if !ok {
		return ""
	}
	switch b.Kind() {
	case types.Uint8: // byte
		return "[]byte"
	case types.Int32: // rune
		return "[]rune"
	}
	return ""
}

// checkBoxing flags arguments whose static type is concrete passed to
// interface-typed parameters.
func checkBoxing(pass *analysis.Pass, name string, call *ast.CallExpr) {
	sigT := pass.TypeOf(call.Fun)
	if sigT == nil {
		return
	}
	sig, ok := sigT.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		if sig.Variadic() && i >= params.Len()-1 {
			last := params.At(params.Len() - 1).Type()
			if s, ok := last.(*types.Slice); ok {
				pt = s.Elem()
			}
		} else if i < params.Len() {
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := pass.TypeOf(arg)
		if at == nil {
			continue
		}
		if b, ok := at.(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		if _, argIface := at.Underlying().(*types.Interface); argIface {
			continue
		}
		pass.Reportf(arg.Pos(), "interface boxing: %s passed to interface-typed parameter in noalloc function %s", at.String(), name)
	}
}

// captures reports whether lit references any object declared in fd but
// outside lit — a capturing closure, which allocates its environment.
func captures(pass *analysis.Pass, fd *ast.FuncDecl, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			return true
		}
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		pos := v.Pos()
		if pos >= fd.Pos() && pos < lit.Pos() {
			found = true
			return false
		}
		return true
	})
	return found
}
