package a

import "fmt"

type ws struct {
	buf     []float64
	scratch []byte
}

// hot is the flagging fixture: one of everything the analyzer catches.
//
//mdes:noalloc
func (w *ws) hot(n int, s string, bs []byte) {
	_ = make([]float64, n)       // want `make allocates in noalloc function hot`
	_ = new(ws)                  // want `new allocates in noalloc function hot`
	_ = []int{1, 2}              // want `slice literal allocates`
	_ = map[string]int{}         // want `map literal allocates`
	_ = &ws{}                    // want `&composite literal may escape`
	w.buf = append(w.buf, 1)     // want `append without preallocated-cap evidence`
	_ = s + "!"                  // want `string concatenation allocates`
	_ = string(bs)               // want `conversion allocates`
	_ = []byte(s)                // want `conversion allocates`
	fmt.Println(n)               // want `call to fmt.Println allocates` `interface boxing: int passed`
	sink(n)                      // want `interface boxing: int passed`
	f := func() int { return n } // want `closure captures enclosing variables`
	_ = f
}

func sink(v any) { _ = v }

// cold is the non-flagging fixture: the same shapes with capacity evidence,
// constant folding, non-capturing closures, or an in-place waiver.
//
//mdes:noalloc
func (w *ws) cold(n int, other []float64) float64 {
	out := w.buf[:0]
	out = append(out, 1)                   // resliced destination: ok
	w.scratch = append(w.scratch[:0], 'x') // inline reslice: ok
	const greet = "a" + "b"                // constant concatenation: ok
	var acc float64
	for _, v := range other {
		acc += v
	}
	f := func(x int) int { return x * 2 } // captures nothing: ok
	if n < 0 {
		_ = make([]byte, 8) //mdes:allow(noalloc) cold error path, never taken steady-state
	}
	return acc + float64(f(n))
}

// unannotated functions may allocate freely.
func free(n int) []int {
	fmt.Println("hi")
	return make([]int, n)
}
