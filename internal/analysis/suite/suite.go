// Package suite lists the analyzers shipped in mdes-vet.
package suite

import (
	"mdes/internal/analysis"
	"mdes/internal/analysis/ctxloop"
	"mdes/internal/analysis/detrand"
	"mdes/internal/analysis/frameerr"
	"mdes/internal/analysis/goloop"
	"mdes/internal/analysis/lockcall"
	"mdes/internal/analysis/lockorder"
	"mdes/internal/analysis/noalloc"
	"mdes/internal/analysis/snapsym"
)

// Analyzers is the full mdes-vet suite, in reporting order.
var Analyzers = []*analysis.Analyzer{
	noalloc.Analyzer,
	ctxloop.Analyzer,
	detrand.Analyzer,
	lockcall.Analyzer,
	frameerr.Analyzer,
	lockorder.Analyzer,
	goloop.Analyzer,
	snapsym.Analyzer,
}
