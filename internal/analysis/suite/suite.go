// Package suite lists the analyzers shipped in mdes-vet.
package suite

import (
	"mdes/internal/analysis"
	"mdes/internal/analysis/ctxloop"
	"mdes/internal/analysis/detrand"
	"mdes/internal/analysis/frameerr"
	"mdes/internal/analysis/lockcall"
	"mdes/internal/analysis/noalloc"
)

// Analyzers is the full mdes-vet suite, in reporting order.
var Analyzers = []*analysis.Analyzer{
	noalloc.Analyzer,
	ctxloop.Analyzer,
	detrand.Analyzer,
	lockcall.Analyzer,
	frameerr.Analyzer,
}
