package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"strings"
)

// vetConfig mirrors the JSON configuration cmd/go writes for each package
// when driving a -vettool (see cmd/go/internal/work's vetConfig). Only the
// fields the driver consumes are declared.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	GoVersion                 string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point for a vettool binary. It implements the cmd/go
// protocol (the -V=full and -flags handshakes, then one invocation per
// package with a vet.cfg path) and additionally supports a standalone mode:
// invoked with package patterns instead of a .cfg file, it re-executes
// `go vet -vettool=<self> <patterns>` so cmd/go handles package loading.
func Main(name string, analyzers ...*Analyzer) {
	args := os.Args[1:]
	for _, a := range args {
		switch a {
		case "-V=full", "--V=full":
			// cmd/go stamps the tool into its build cache key using this
			// line; the token after "version" must not be "devel". Hashing
			// our own executable means rebuilding mdes-vet invalidates
			// cached vet results.
			fmt.Printf("%s version v1-%s\n", name, selfHash())
			return
		case "-flags", "--flags":
			// No tool-specific flags: report an empty JSON flag set.
			fmt.Println("[]")
			return
		}
	}
	if len(args) > 0 && strings.HasSuffix(args[len(args)-1], ".cfg") {
		diags, err := runConfig(args[len(args)-1], analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		if diags > 0 {
			os.Exit(2)
		}
		return
	}
	if len(args) == 0 || args[0] == "help" || args[0] == "-h" || args[0] == "--help" {
		usage(name, analyzers)
		if len(args) == 0 {
			os.Exit(2)
		}
		return
	}
	// Standalone mode: let `go vet` load the packages and call us back.
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: cannot locate own executable: %v\n", name, err)
		os.Exit(1)
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
		os.Exit(1)
	}
}

func usage(name string, analyzers []*Analyzer) {
	fmt.Fprintf(os.Stderr, "%s: static analyzers for the mdes repository\n\n", name)
	fmt.Fprintf(os.Stderr, "usage:\n")
	fmt.Fprintf(os.Stderr, "  %s ./...                     # standalone (drives go vet)\n", name)
	fmt.Fprintf(os.Stderr, "  go vet -vettool=%s ./...     # as a vet tool\n\n", name)
	fmt.Fprintf(os.Stderr, "analyzers:\n")
	for _, a := range analyzers {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, doc)
	}
	fmt.Fprintf(os.Stderr, "\nsuppress a finding in place with: //mdes:allow(<analyzer>) <reason>\n")
}

// selfHash returns a short content hash of the running executable.
func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown0000000000"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown0000000000"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown0000000000"
	}
	return fmt.Sprintf("%x", h.Sum(nil))[:16]
}

// runConfig analyzes the single package described by the vet.cfg file and
// prints diagnostics to stderr, returning how many were reported.
func runConfig(cfgFile string, analyzers []*Analyzer) (int, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return 0, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 0, fmt.Errorf("parsing %s: %w", cfgFile, err)
	}
	// cmd/go requires the facts ("vetx") output to exist for caching even
	// though this suite exchanges no facts between packages.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("mdes-vet: no facts\n"), 0o666); err != nil {
			return 0, err
		}
	}
	if cfg.VetxOnly {
		// Dependency-only invocation: nothing to analyze.
		return 0, nil
	}

	fset := token.NewFileSet()
	parsed, err := parseFiles(fset, cfg.GoFiles)
	if err != nil {
		return 0, err
	}
	pkg, info, err := typeCheckConfig(fset, &cfg, parsed)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 0, fmt.Errorf("typechecking %s: %w", cfg.ImportPath, err)
	}

	loaded := &Package{Fset: fset, Files: parsed, Pkg: pkg, Info: info}
	total := 0
	for _, a := range analyzers {
		pass := loaded.NewPass(a)
		if err := a.Run(pass); err != nil {
			return total, fmt.Errorf("analyzer %s on %s: %w", a.Name, cfg.ImportPath, err)
		}
		for _, d := range pass.Diagnostics() {
			fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, a.Name)
			total++
		}
	}
	return total, nil
}

func parseFiles(fset *token.FileSet, paths []string) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(paths))
	for _, p := range paths {
		f, err := parser.ParseFile(fset, p, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// cfgImporter resolves imports through the vet.cfg's ImportMap and
// PackageFile tables using the toolchain's gc export-data reader.
type cfgImporter struct {
	cfg  *vetConfig
	base types.ImporterFrom
}

func (ci *cfgImporter) Import(path string) (*types.Package, error) {
	return ci.ImportFrom(path, "", 0)
}

func (ci *cfgImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if mapped, ok := ci.cfg.ImportMap[path]; ok {
		path = mapped
	}
	return ci.base.ImportFrom(path, ci.cfg.Dir, 0)
}

func typeCheckConfig(fset *token.FileSet, cfg *vetConfig, files []*ast.File) (*types.Package, *types.Info, error) {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	base, ok := importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)
	if !ok {
		return nil, nil, fmt.Errorf("gc importer does not implement ImporterFrom")
	}
	info := newInfo()
	conf := types.Config{
		Importer:  &cfgImporter{cfg: cfg, base: base},
		Sizes:     types.SizesFor("gc", "amd64"),
		GoVersion: cfg.GoVersion,
	}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}
