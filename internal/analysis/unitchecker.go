package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// jsonEnv carries the -json output path from the standalone front-end into
// the per-package vettool invocations cmd/go spawns.
const jsonEnv = "MDES_VET_JSON"

// JSONDiagnostic is one finding in the machine-readable -json output: one
// JSON object per line, appended per analyzed package.
type JSONDiagnostic struct {
	Package  string `json:"package"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// vetConfig mirrors the JSON configuration cmd/go writes for each package
// when driving a -vettool (see cmd/go/internal/work's vetConfig). Only the
// fields the driver consumes are declared.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	GoVersion                 string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point for a vettool binary. It implements the cmd/go
// protocol (the -V=full and -flags handshakes, then one invocation per
// package with a vet.cfg path) and additionally supports a standalone mode:
// invoked with package patterns instead of a .cfg file, it re-executes
// `go vet -vettool=<self> <patterns>` so cmd/go handles package loading.
func Main(name string, analyzers ...*Analyzer) {
	args := os.Args[1:]
	for _, a := range args {
		switch a {
		case "-V=full", "--V=full":
			// cmd/go stamps the tool into its build cache key using this
			// line; the token after "version" must not be "devel". Hashing
			// our own executable means rebuilding mdes-vet invalidates
			// cached vet results.
			fmt.Printf("%s version v1-%s\n", name, selfHash())
			return
		case "-flags", "--flags":
			// No tool-specific flags: report an empty JSON flag set.
			fmt.Println("[]")
			return
		}
	}
	if len(args) > 0 && strings.HasSuffix(args[len(args)-1], ".cfg") {
		diags, err := runConfig(args[len(args)-1], analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		if diags > 0 {
			os.Exit(2)
		}
		return
	}
	if len(args) == 0 || args[0] == "help" || args[0] == "-h" || args[0] == "--help" {
		usage(name, analyzers)
		if len(args) == 0 {
			os.Exit(2)
		}
		return
	}
	// Standalone mode: parse front-end flags, then let `go vet` load the
	// packages and call us back per package.
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	fs.Usage = func() { usage(name, analyzers) }
	jsonOut := fs.String("json", "", "also write diagnostics as JSON lines to this `file`")
	budget := fs.String("waivers", "", "check //mdes:allow waivers against this budget `file` and exit")
	update := fs.Bool("update-waivers", false, "with -waivers: rewrite the budget file from the tree instead of checking")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	if *budget != "" {
		if err := waiverBudget(".", *budget, *update, known); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(2)
		}
		return
	}
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: cannot locate own executable: %v\n", name, err)
		os.Exit(1)
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, fs.Args()...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if *jsonOut != "" {
		abs, err := filepath.Abs(*jsonOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		// Start fresh; the per-package invocations append.
		if err := os.WriteFile(abs, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		cmd.Env = append(os.Environ(), jsonEnv+"="+abs)
	}
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
		os.Exit(1)
	}
}

// waiverBudget implements the -waivers subcommand: scan the module rooted at
// root and either check against or regenerate the budget file.
func waiverBudget(root, budgetFile string, update bool, known map[string]bool) error {
	if update {
		ws, err := ScanWaivers(root, known)
		if err != nil {
			return err
		}
		return os.WriteFile(budgetFile, FormatWaivers(ws), 0o666)
	}
	return CheckWaivers(root, budgetFile, known)
}

func usage(name string, analyzers []*Analyzer) {
	fmt.Fprintf(os.Stderr, "%s: static analyzers for the mdes repository\n\n", name)
	fmt.Fprintf(os.Stderr, "usage:\n")
	fmt.Fprintf(os.Stderr, "  %s ./...                     # standalone (drives go vet)\n", name)
	fmt.Fprintf(os.Stderr, "  go vet -vettool=%s ./...     # as a vet tool\n\n", name)
	fmt.Fprintf(os.Stderr, "analyzers:\n")
	for _, a := range analyzers {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, doc)
	}
	fmt.Fprintf(os.Stderr, "\nsuppress a finding in place with: //mdes:allow(<analyzer>) <reason>\n")
}

// selfHash returns a short content hash of the running executable.
func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown0000000000"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown0000000000"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown0000000000"
	}
	return fmt.Sprintf("%x", h.Sum(nil))[:16]
}

// runConfig analyzes the single package described by the vet.cfg file and
// prints diagnostics to stderr, returning how many were reported.
func runConfig(cfgFile string, analyzers []*Analyzer) (int, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return 0, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 0, fmt.Errorf("parsing %s: %w", cfgFile, err)
	}
	// cmd/go requires the facts ("vetx") output to exist for caching even
	// though this suite exchanges no facts between packages.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("mdes-vet: no facts\n"), 0o666); err != nil {
			return 0, err
		}
	}
	if cfg.VetxOnly {
		// Dependency-only invocation: nothing to analyze.
		return 0, nil
	}

	fset := token.NewFileSet()
	parsed, err := parseFiles(fset, cfg.GoFiles)
	if err != nil {
		return 0, err
	}
	pkg, info, err := typeCheckConfig(fset, &cfg, parsed)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 0, fmt.Errorf("typechecking %s: %w", cfg.ImportPath, err)
	}

	loaded := &Package{Fset: fset, Files: parsed, Pkg: pkg, Info: info}
	total := 0
	var jsonDiags []JSONDiagnostic
	emit := func(analyzer string, pos token.Pos, msg string) {
		p := fset.Position(pos)
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", p, msg, analyzer)
		jsonDiags = append(jsonDiags, JSONDiagnostic{
			Package: cfg.ImportPath, File: p.Filename, Line: p.Line, Col: p.Column,
			Analyzer: analyzer, Message: msg,
		})
		total++
	}
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
		pass := loaded.NewPass(a)
		if err := a.Run(pass); err != nil {
			return total, fmt.Errorf("analyzer %s on %s: %w", a.Name, cfg.ImportPath, err)
		}
		for _, d := range pass.Diagnostics() {
			emit(a.Name, d.Pos, d.Message)
		}
	}
	// A waiver naming an analyzer that does not exist suppresses nothing and
	// usually means a typo silently disabled a real waiver — that is itself a
	// finding, not a no-op.
	for _, f := range parsed {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, d := range ParseAllows(c.Text) {
					if !known[d.Analyzer] {
						emit("mdes-vet", c.Pos(), fmt.Sprintf("//mdes:allow names unknown analyzer %q", d.Analyzer))
					}
				}
			}
		}
	}
	if total > 0 {
		if err := appendJSON(jsonDiags); err != nil {
			return total, err
		}
	}
	return total, nil
}

// appendJSON appends diagnostics to the file named by MDES_VET_JSON, one JSON
// object per line. The per-package vettool processes cmd/go spawns may run
// concurrently, so each package's lines are written with a single O_APPEND
// write.
func appendJSON(diags []JSONDiagnostic) error {
	path := os.Getenv(jsonEnv)
	if path == "" || len(diags) == 0 {
		return nil
	}
	var buf []byte
	for _, d := range diags {
		line, err := json.Marshal(d)
		if err != nil {
			return err
		}
		buf = append(buf, line...)
		buf = append(buf, '\n')
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o666)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		return err
	}
	return f.Close()
}

func parseFiles(fset *token.FileSet, paths []string) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(paths))
	for _, p := range paths {
		f, err := parser.ParseFile(fset, p, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// cfgImporter resolves imports through the vet.cfg's ImportMap and
// PackageFile tables using the toolchain's gc export-data reader.
type cfgImporter struct {
	cfg  *vetConfig
	base types.ImporterFrom
}

func (ci *cfgImporter) Import(path string) (*types.Package, error) {
	return ci.ImportFrom(path, "", 0)
}

func (ci *cfgImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if mapped, ok := ci.cfg.ImportMap[path]; ok {
		path = mapped
	}
	return ci.base.ImportFrom(path, ci.cfg.Dir, 0)
}

func typeCheckConfig(fset *token.FileSet, cfg *vetConfig, files []*ast.File) (*types.Package, *types.Info, error) {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	base, ok := importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)
	if !ok {
		return nil, nil, fmt.Errorf("gc importer does not implement ImporterFrom")
	}
	info := newInfo()
	conf := types.Config{
		Importer:  &cfgImporter{cfg: cfg, base: base},
		Sizes:     types.SizesFor("gc", "amd64"),
		GoVersion: cfg.GoVersion,
	}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}
