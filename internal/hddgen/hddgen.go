// Package hddgen synthesises Backblaze-style SMART telemetry (§IV of the
// paper): a fleet of hard drives reporting daily SMART attributes, where
// failing drives develop a latent degradation process that inflates the five
// failure-predictive attributes the paper surfaces in Table III — 192
// (power-off retract), 187 (reported uncorrectable), 198 (offline
// uncorrectable sector), 197 (current pending sector), and 5 (reallocated
// sectors) — in the days before the failure date, after which the drive is
// removed from production.
//
// The generator reproduces the dataset properties the paper's pipeline
// depends on: 20 raw features of which 4 barely change (and are dropped),
// a mix of cumulative counters (differenced before analysis) and daily
// gauges, zero-dominated error counts that discretise with the binary
// scheme, and smooth features that discretise by quantile (Fig 10).
package hddgen

import (
	"fmt"
	"math"
	"math/rand"
)

// Feature names. RawFeatures is the full 20-attribute set recorded for every
// drive; NearConstant lists the four attributes that barely change.
var (
	RawFeatures = []string{
		"smart_1", "smart_3", "smart_4", "smart_5", "smart_7",
		"smart_9", "smart_10", "smart_11", "smart_12", "smart_187",
		"smart_188", "smart_192", "smart_193", "smart_194", "smart_197",
		"smart_198", "smart_199", "smart_200", "smart_241", "smart_242",
	}
	// NearConstant are dropped before building the relationship graph
	// (§IV-C: "the values of 4 features are barely changed in the year").
	NearConstant = []string{"smart_3", "smart_10", "smart_11", "smart_200"}
	// Cumulative lists the monotone lifetime counters that are first-order
	// differenced before analysis (§IV-B).
	Cumulative = []string{
		"smart_4", "smart_5", "smart_9", "smart_12", "smart_187",
		"smart_188", "smart_192", "smart_193", "smart_198", "smart_199",
		"smart_241", "smart_242",
	}
	// Predictive are the degradation-linked attributes of Table III.
	Predictive = []string{"smart_192", "smart_187", "smart_198", "smart_197", "smart_5"}
)

// Drive is one disk's telemetry: every feature series has Days entries; a
// failed drive's last day is its failure day (it is removed afterwards).
type Drive struct {
	ID       string
	Failed   bool
	Days     int
	Features map[string][]float64
	// DegradationOnset is the day index when degradation started (failed,
	// detectable drives only; -1 otherwise).
	DegradationOnset int
}

// Fleet is the generated drive population.
type Fleet struct {
	Drives []*Drive
}

// FailedDrives returns the failed subset.
func (f *Fleet) FailedDrives() []*Drive {
	var out []*Drive
	for _, d := range f.Drives {
		if d.Failed {
			out = append(out, d)
		}
	}
	return out
}

// HealthyDrives returns the non-failed subset.
func (f *Fleet) HealthyDrives() []*Drive {
	var out []*Drive
	for _, d := range f.Drives {
		if !d.Failed {
			out = append(out, d)
		}
	}
	return out
}

// Config controls the simulated fleet.
type Config struct {
	Drives      int
	FailureRate float64 // fraction of drives that fail at the end of their log
	Days        int     // days of telemetry per drive (paper uses ~4 months)
	// DegradationLead is the mean number of days before failure when the
	// latent degradation starts.
	DegradationLead int
	// DetectableFrac is the fraction of failing drives whose failure is
	// preceded by visible degradation; the rest fail abruptly and bound
	// every method's recall.
	DetectableFrac float64
	Seed           int64
}

// Default mirrors the paper's setting: ~24 long-lived drives with four
// months of daily data each would be too few to estimate recall, so the
// default fleet is larger while keeping failures rare.
func Default() Config {
	return Config{
		Drives:          120,
		FailureRate:     0.33,
		Days:            120,
		DegradationLead: 21,
		DetectableFrac:  0.8,
		Seed:            7,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Drives <= 0 || c.Days <= 2:
		return fmt.Errorf("hddgen: drives %d / days %d too small", c.Drives, c.Days)
	case c.FailureRate < 0 || c.FailureRate > 1:
		return fmt.Errorf("hddgen: failure rate %v outside [0,1]", c.FailureRate)
	case c.DegradationLead <= 0 || c.DegradationLead >= c.Days:
		return fmt.Errorf("hddgen: degradation lead %d outside (0, days)", c.DegradationLead)
	case c.DetectableFrac < 0 || c.DetectableFrac > 1:
		return fmt.Errorf("hddgen: detectable fraction %v outside [0,1]", c.DetectableFrac)
	}
	return nil
}

// Generate builds the fleet deterministically from cfg.Seed.
func Generate(cfg Config) (*Fleet, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	fleet := &Fleet{Drives: make([]*Drive, 0, cfg.Drives)}
	nFail := int(float64(cfg.Drives)*cfg.FailureRate + 0.5)
	for i := 0; i < cfg.Drives; i++ {
		failed := i < nFail
		detectable := failed && rng.Float64() < cfg.DetectableFrac
		d := genDrive(fmt.Sprintf("drive-%03d", i), cfg, rng, failed, detectable)
		fleet.Drives = append(fleet.Drives, d)
	}
	return fleet, nil
}

// genDrive simulates one drive day by day.
func genDrive(id string, cfg Config, rng *rand.Rand, failed, detectable bool) *Drive {
	d := &Drive{
		ID:               id,
		Failed:           failed,
		Days:             cfg.Days,
		Features:         make(map[string][]float64, len(RawFeatures)),
		DegradationOnset: -1,
	}
	for _, f := range RawFeatures {
		d.Features[f] = make([]float64, cfg.Days)
	}

	onset := cfg.Days + 1
	// Degradation style: most detectable failures are "spiky" (error bursts
	// any outlier detector sees); a minority degrade gradually — small
	// daily deltas whose individual days sit inside the healthy envelope,
	// which defeats per-sample outlier detection but not supervised or
	// windowed methods.
	gradual := false
	if failed && detectable {
		lead := int(float64(cfg.DegradationLead) * (0.5 + rng.Float64()))
		if lead >= cfg.Days-2 {
			lead = cfg.Days - 2
		}
		if lead < 2 {
			lead = 2
		}
		onset = cfg.Days - lead
		d.DegradationOnset = onset
		gradual = rng.Float64() < 0.4
	}

	// Per-drive baselines.
	powerOnStart := 8000 + rng.Float64()*20000
	tempBase := 24 + rng.Float64()*10
	writeRate := 2e7 * (0.5 + rng.Float64())
	readRate := 3e7 * (0.5 + rng.Float64())
	loadRate := 20 + rng.Float64()*40
	seekBase := 60 + rng.Float64()*20

	// Cumulative state.
	cum := map[string]float64{
		"smart_4": 10 + float64(rng.Intn(40)), "smart_5": 0,
		"smart_9": powerOnStart, "smart_12": 10 + float64(rng.Intn(30)),
		"smart_187": 0, "smart_188": 0, "smart_192": float64(rng.Intn(10)),
		"smart_193": 1000 * rng.Float64(), "smart_198": 0, "smart_199": 0,
		"smart_241": writeRate * 100, "smart_242": readRate * 100,
	}
	pending := 0.0
	health := 0.0 // latent degradation level

	for day := 0; day < cfg.Days; day++ {
		if day >= onset {
			// Degradation compounds: each day's increment grows.
			inc := 0.3 + rng.Float64()*0.7
			if gradual {
				inc *= 0.18
			}
			health += inc
		}
		sick := health > 0

		// Transient "stress events" (vibration, thermal excursions, power
		// anomalies) hit healthy drives occasionally and tick SEVERAL error
		// counters at once. This keeps the counters zero-dominated yet
		// mutually correlated — which is what the relationship graph learns
		// during healthy training — and it gives per-day outlier detection
		// a realistic noise floor: a mild failure day resembles a stress
		// day, so one-day outlier checks miss gradual failures.
		stress := 0.0
		if rng.Float64() < 0.12 {
			stress = 0.5 + rng.Float64()*1.5
		}
		blip := func(p float64) float64 {
			if rng.Float64() < p {
				return float64(1 + rng.Intn(2))
			}
			return 0
		}

		// Error counters scale with shared stress and latent health.
		newUncorrectable := blip(0.01) + poissonish(rng, stress*0.9+health*0.8)
		newOffline := blip(0.01) + poissonish(rng, stress*0.7+health*0.6)
		newRealloc := poissonish(rng, stress*0.3+health*0.4)
		newRetract := blip(0.02) + poissonish(rng, stress*1.1+health*0.5)
		pending += poissonish(rng, stress*0.8+health*0.9)
		if pending > 0 && rng.Float64() < 0.3 {
			remapped := math.Min(pending, float64(1+rng.Intn(3)))
			pending -= remapped
			newRealloc += remapped
		}

		cum["smart_187"] += newUncorrectable
		cum["smart_198"] += newOffline
		cum["smart_5"] += newRealloc
		cum["smart_192"] += newRetract
		if sick {
			cum["smart_188"] += poissonish(rng, health*0.2)
			cum["smart_199"] += poissonish(rng, health*0.1)
		}
		cum["smart_9"] += 24
		cum["smart_193"] += loadRate * (0.8 + 0.4*rng.Float64())
		cum["smart_241"] += writeRate * (0.7 + 0.6*rng.Float64())
		cum["smart_242"] += readRate * (0.7 + 0.6*rng.Float64())
		if rng.Float64() < 0.05 {
			cum["smart_4"]++
			cum["smart_12"]++
		}

		set := func(f string, v float64) { d.Features[f][day] = v }
		for _, f := range Cumulative {
			set(f, cum[f])
		}
		set("smart_197", pending)
		set("smart_1", 70+10*rng.NormFloat64())
		set("smart_7", seekBase+3*rng.NormFloat64())
		set("smart_194", tempBase+2*rng.NormFloat64()+health*0.1)
		// Near-constant attributes: fixed value with a microscopic wobble.
		set("smart_3", 425)
		set("smart_10", 0)
		set("smart_11", 0)
		set("smart_200", 0)
	}
	return d
}

// poissonish draws a cheap non-negative integer-valued count with the given
// mean — a geometric-thinning approximation adequate for telemetry noise.
func poissonish(rng *rand.Rand, mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	var n float64
	// Sum of Bernoulli thinnings approximates a Poisson for small means
	// and stays cheap and deterministic for larger ones.
	for mean > 0 {
		p := mean
		if p > 0.9 {
			p = 0.9
		}
		if rng.Float64() < p {
			n++
		}
		mean -= 0.9
	}
	return n
}

// Labels returns per-drive failure labels aligned with Drives order.
func (f *Fleet) Labels() []bool {
	out := make([]bool, len(f.Drives))
	for i, d := range f.Drives {
		out[i] = d.Failed
	}
	return out
}

// Sample is one drive-day observation for the baseline models.
type Sample struct {
	DriveID string
	Day     int
	X       []float64
	// Failure marks the drive's last day of operation before failing —
	// the positive class of the paper's baselines.
	Failure bool
}

// FeatureVector lists the model features in a fixed order: the 20 raw
// attributes followed by the 14 differenced cumulative ones ("34 features,
// including 20 raw SMART features and 14 differenced ones" — §IV-B; the
// paper differences the cumulative counters, of which two of ours are
// near-constant and excluded from differencing).
func FeatureVector() []string {
	out := append([]string(nil), RawFeatures...)
	for _, f := range Cumulative {
		out = append(out, f+"_diff")
	}
	return out
}

// TabularSamples flattens the fleet into per-day samples with raw and
// differenced features, for the Random Forest and one-class SVM baselines.
func (f *Fleet) TabularSamples() []Sample {
	names := FeatureVector()
	var out []Sample
	for _, d := range f.Drives {
		diffs := make(map[string][]float64, len(Cumulative))
		for _, c := range Cumulative {
			diffs[c] = diff(d.Features[c])
		}
		for day := 0; day < d.Days; day++ {
			x := make([]float64, 0, len(names))
			for _, raw := range RawFeatures {
				x = append(x, d.Features[raw][day])
			}
			for _, c := range Cumulative {
				x = append(x, diffs[c][day])
			}
			out = append(out, Sample{
				DriveID: d.ID,
				Day:     day,
				X:       x,
				Failure: d.Failed && day == d.Days-1,
			})
		}
	}
	return out
}

func diff(series []float64) []float64 {
	out := make([]float64, len(series))
	for i := 1; i < len(series); i++ {
		out[i] = series[i] - series[i-1]
	}
	return out
}
