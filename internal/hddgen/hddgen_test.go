package hddgen

import (
	"testing"

	"mdes/internal/discretize"
	"mdes/internal/stats"
)

func smallConfig() Config {
	cfg := Default()
	cfg.Drives = 30
	cfg.Days = 60
	cfg.DegradationLead = 14
	return cfg
}

func TestValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("Default invalid: %v", err)
	}
	bads := []func(*Config){
		func(c *Config) { c.Drives = 0 },
		func(c *Config) { c.Days = 1 },
		func(c *Config) { c.FailureRate = 1.2 },
		func(c *Config) { c.DegradationLead = 0 },
		func(c *Config) { c.DegradationLead = c.Days },
		func(c *Config) { c.DetectableFrac = -0.1 },
	}
	for i, mutate := range bads {
		cfg := Default()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestGenerateShape(t *testing.T) {
	cfg := smallConfig()
	fleet, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet.Drives) != cfg.Drives {
		t.Fatalf("drives = %d", len(fleet.Drives))
	}
	wantFailed := int(float64(cfg.Drives)*cfg.FailureRate + 0.5)
	if got := len(fleet.FailedDrives()); got != wantFailed {
		t.Fatalf("failed drives = %d, want %d", got, wantFailed)
	}
	if len(fleet.HealthyDrives())+len(fleet.FailedDrives()) != cfg.Drives {
		t.Fatal("healthy+failed != total")
	}
	for _, d := range fleet.Drives {
		if len(d.Features) != len(RawFeatures) {
			t.Fatalf("drive %s has %d features", d.ID, len(d.Features))
		}
		for f, series := range d.Features {
			if len(series) != cfg.Days {
				t.Fatalf("drive %s feature %s has %d days", d.ID, f, len(series))
			}
		}
	}
}

func TestCumulativeFeaturesMonotone(t *testing.T) {
	fleet, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range fleet.Drives[:5] {
		for _, f := range Cumulative {
			if !discretize.IsCumulative(d.Features[f]) {
				t.Fatalf("drive %s feature %s not monotone", d.ID, f)
			}
		}
	}
}

func TestNearConstantFeaturesBarelyChange(t *testing.T) {
	fleet, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range fleet.Drives[:5] {
		for _, f := range NearConstant {
			if sd := stats.StdDev(d.Features[f]); sd > 1e-9 {
				t.Fatalf("near-constant feature %s has stddev %v", f, sd)
			}
		}
	}
}

func TestErrorCountersZeroDominatedOnHealthy(t *testing.T) {
	fleet, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range fleet.HealthyDrives()[:5] {
		deltas := diff(d.Features["smart_187"])
		if zf := discretize.ZeroFraction(deltas); zf < 0.8 {
			t.Fatalf("healthy smart_187 deltas only %.2f zero", zf)
		}
	}
}

func TestDegradationInflatesPredictiveFeatures(t *testing.T) {
	fleet, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var sick *Drive
	for _, d := range fleet.FailedDrives() {
		if d.DegradationOnset > 0 {
			sick = d
			break
		}
	}
	if sick == nil {
		t.Fatal("no detectable failing drive generated")
	}
	for _, f := range []string{"smart_187", "smart_198", "smart_5"} {
		series := sick.Features[f]
		before := series[sick.DegradationOnset-1]
		after := series[len(series)-1]
		if after <= before {
			t.Fatalf("%s did not grow after onset: %v -> %v", f, before, after)
		}
	}
	// Pending sectors (gauge, not cumulative) should be elevated late.
	pend := sick.Features["smart_197"]
	if stats.Mean(pend[sick.DegradationOnset:]) <= stats.Mean(pend[:sick.DegradationOnset]) {
		t.Fatal("smart_197 not elevated after onset")
	}
}

func TestAbruptFailuresExist(t *testing.T) {
	cfg := smallConfig()
	cfg.DetectableFrac = 0.5
	fleet, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var abrupt, detectable int
	for _, d := range fleet.FailedDrives() {
		if d.DegradationOnset < 0 {
			abrupt++
		} else {
			detectable++
		}
	}
	if abrupt == 0 || detectable == 0 {
		t.Fatalf("want a mix of abrupt (%d) and detectable (%d) failures", abrupt, detectable)
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Drives {
		for f, series := range a.Drives[i].Features {
			for day, v := range series {
				if b.Drives[i].Features[f][day] != v {
					t.Fatalf("non-deterministic at drive %d %s day %d", i, f, day)
				}
			}
		}
	}
}

func TestTabularSamples(t *testing.T) {
	cfg := smallConfig()
	fleet, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	samples := fleet.TabularSamples()
	if len(samples) != cfg.Drives*cfg.Days {
		t.Fatalf("samples = %d, want %d", len(samples), cfg.Drives*cfg.Days)
	}
	names := FeatureVector()
	if len(names) != len(RawFeatures)+len(Cumulative) {
		t.Fatalf("feature vector = %d names", len(names))
	}
	var positives int
	for _, s := range samples {
		if len(s.X) != len(names) {
			t.Fatalf("sample width = %d, want %d", len(s.X), len(names))
		}
		if s.Failure {
			positives++
			if s.Day != cfg.Days-1 {
				t.Fatalf("failure sample on day %d, want last day", s.Day)
			}
		}
	}
	if positives != len(fleet.FailedDrives()) {
		t.Fatalf("positives = %d, want %d", positives, len(fleet.FailedDrives()))
	}
}

func TestLabels(t *testing.T) {
	fleet, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	labels := fleet.Labels()
	var n int
	for _, l := range labels {
		if l {
			n++
		}
	}
	if n != len(fleet.FailedDrives()) {
		t.Fatalf("labels count %d != failed %d", n, len(fleet.FailedDrives()))
	}
}
