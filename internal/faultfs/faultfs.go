// Package faultfs abstracts the filesystem operations behind every durable
// artefact in the repo — the pair-training journal and the serve-layer
// session snapshots — so that crash-safety can be *proven* against injected
// faults instead of asserted in comments.
//
// Two implementations:
//
//   - OSFS passes straight through to the os package. It is the zero-cost
//     default: production code pays one interface dispatch per IO call, on
//     paths that end in an fsync anyway.
//   - InjectFS (inject.go) is a deterministic, seed-driven in-memory
//     filesystem that models a page cache and injects short writes, ENOSPC,
//     failed or partial fsync, torn writes at byte granularity, rename
//     failures, and a programmable crash point that freezes all subsequent
//     IO to simulate power loss.
//
// The interface deliberately models the POSIX durability contract, not just
// the read/write API: fsync on a file does NOT persist its directory entry,
// so a crash can un-create a freshly created file or un-do a rename unless
// the parent directory is fsynced too (SyncDir). internal/chaos drives
// workloads over InjectFS and asserts bit-for-bit recovery after every
// injected failure.
package faultfs

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"syscall"
)

// File is the subset of *os.File the durable paths need. Write errors and —
// critically — Sync and Close errors must be observed by callers; the
// frameerr analyzer enforces that for this interface exactly as it does for
// *os.File.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes the file's content to stable storage. Until it returns
	// nil, none of the preceding writes are guaranteed to survive a crash
	// (though an adversarial subset may).
	Sync() error
	// Truncate changes the file size. Like writes, the new size is only
	// crash-durable after a successful Sync.
	Truncate(size int64) error
	Seek(offset int64, whence int) (int64, error)
	// Name returns the path the file was opened with.
	Name() string
}

// FS is the filesystem surface used by the checkpoint journal and the
// serve-layer snapshot store.
type FS interface {
	// OpenFile opens a file with os.OpenFile semantics. A file created here
	// has a volatile directory entry until SyncDir succeeds on its parent.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// CreateTemp creates a new temp file in dir with os.CreateTemp
	// semantics.
	CreateTemp(dir, pattern string) (File, error)
	// ReadFile reads a whole file, like os.ReadFile. A missing file
	// satisfies errors.Is(err, fs.ErrNotExist).
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newpath with oldpath. The swap of the
	// directory entry is only crash-durable after SyncDir on the parent.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// ReadDir lists the base names of the regular files directly under dir,
	// sorted. A missing directory satisfies errors.Is(err, fs.ErrNotExist).
	ReadDir(dir string) ([]string, error)
	// SyncDir fsyncs a directory, making its current entries (creations,
	// renames, removals) crash-durable. This is the step that turns
	// "tmp + fsync + rename" into an actually atomic durable replace.
	SyncDir(dir string) error
}

// OSFS is the passthrough implementation backed by the real filesystem.
type OSFS struct{}

// OS is the FS used when no fault injection is configured.
var OS FS = OSFS{}

func (OSFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OSFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (OSFS) Remove(name string) error { return os.Remove(name) }

func (OSFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if e.Type().IsRegular() {
			names = append(names, e.Name())
		}
	}
	return names, nil // os.ReadDir already sorts by name
}

// SyncDir opens the directory and fsyncs it so freshly created, renamed, or
// removed entries survive power loss. Filesystems that do not support
// fsync on directories report fs.ErrInvalid; that is surfaced to the caller,
// which may treat it as best-effort.
func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		_ = d.Close() // the sync error is the one reported
		// Some filesystems (and some CI sandboxes) reject fsync on a
		// directory fd with EINVAL; the entry rename itself still happened,
		// so treat "unsupported" as best-effort rather than data loss.
		if isUnsupportedSync(err) {
			return nil
		}
		return err
	}
	return d.Close()
}

// isUnsupportedSync reports whether a directory fsync failed because the
// operation is unsupported rather than because durability was lost.
func isUnsupportedSync(err error) bool {
	return errors.Is(err, fs.ErrInvalid) || errors.Is(err, syscall.EINVAL) ||
		errors.Is(err, syscall.ENOTSUP)
}
