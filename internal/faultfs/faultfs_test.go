package faultfs

import (
	"bytes"
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
)

// writeSync creates path, writes data, syncs the file, and closes it.
func writeSync(t *testing.T, fsys FS, path string, data []byte) {
	t.Helper()
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatalf("write %s: %v", path, err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync %s: %v", path, err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close %s: %v", path, err)
	}
}

func TestOSFSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	tmp, err := OS.CreateTemp(dir, ".t-*")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tmp.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := tmp.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := tmp.Close(); err != nil {
		t.Fatal(err)
	}
	final := filepath.Join(dir, "final")
	if err := OS.Rename(tmp.Name(), final); err != nil {
		t.Fatal(err)
	}
	if err := OS.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	got, err := OS.ReadFile(final)
	if err != nil || string(got) != "hello" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	if err := OS.Remove(final); err != nil {
		t.Fatal(err)
	}
	if _, err := OS.ReadFile(final); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("after remove: %v, want ErrNotExist", err)
	}
}

func TestInjectSyncedPrefixSurvivesCrash(t *testing.T) {
	ifs := NewInject(1, Faults{})
	a, b := []byte("frame-A-synced"), []byte("frame-B-unsynced")
	f, err := ifs.OpenFile("j", os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(a); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := ifs.SyncDir("."); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(b); err != nil {
		t.Fatal(err)
	}
	ifs.Crash()
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("sync after crash: %v, want ErrCrashed", err)
	}
	ifs.Recover()
	got, err := ifs.ReadFile("j")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) < len(a) || !bytes.Equal(got[:len(a)], a) {
		t.Fatalf("synced prefix damaged: %q", got)
	}
	if len(got) > len(a)+len(b) {
		t.Fatalf("recovered file longer than ever written: %d bytes", len(got))
	}
}

func TestInjectDirEntryDurability(t *testing.T) {
	// Without SyncDir the freshly created file must vanish for at least one
	// seed; with SyncDir it must survive every seed.
	lost := false
	for seed := int64(0); seed < 32; seed++ {
		ifs := NewInject(seed, Faults{})
		writeSync(t, ifs, "d/f", []byte("x"))
		ifs.Crash()
		ifs.Recover()
		if _, err := ifs.ReadFile("d/f"); errors.Is(err, fs.ErrNotExist) {
			lost = true
		}

		ifs = NewInject(seed, Faults{})
		writeSync(t, ifs, "d/f", []byte("x"))
		if err := ifs.SyncDir("d"); err != nil {
			t.Fatal(err)
		}
		ifs.Crash()
		ifs.Recover()
		if got, err := ifs.ReadFile("d/f"); err != nil || string(got) != "x" {
			t.Fatalf("seed %d: dir-synced file lost: %q, %v", seed, got, err)
		}
	}
	if !lost {
		t.Fatal("no seed ever dropped an un-SyncDir'd entry; crash model too lenient")
	}
}

func TestInjectRenameIsAtomicWhenContentSynced(t *testing.T) {
	oldContent, newContent := []byte("old-old-old"), []byte("new-new")
	for seed := int64(0); seed < 64; seed++ {
		ifs := NewInject(seed, Faults{})
		writeSync(t, ifs, "d/target", oldContent)
		if err := ifs.SyncDir("d"); err != nil {
			t.Fatal(err)
		}
		writeSync(t, ifs, "d/tmp", newContent)
		if err := ifs.Rename("d/tmp", "d/target"); err != nil {
			t.Fatal(err)
		}
		// Crash before SyncDir: the reader must see exactly old or new.
		ifs.Crash()
		ifs.Recover()
		got, err := ifs.ReadFile("d/target")
		if err != nil {
			t.Fatalf("seed %d: target vanished after rename: %v", seed, err)
		}
		if !bytes.Equal(got, oldContent) && !bytes.Equal(got, newContent) {
			t.Fatalf("seed %d: torn rename target %q", seed, got)
		}
	}
}

func TestInjectCrashAfterTearsWrite(t *testing.T) {
	ifs := NewInject(7, Faults{})
	f, err := ifs.OpenFile("f", os.O_RDWR|os.O_CREATE, 0o644) // op 1
	if err != nil {
		t.Fatal(err)
	}
	ifs.CrashAfter(1)
	buf := bytes.Repeat([]byte{0xAB}, 100)
	n, err := f.Write(buf)
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("write at crash point: n=%d err=%v, want ErrCrashed", n, err)
	}
	if n >= len(buf) {
		t.Fatalf("crashing write persisted everything (n=%d)", n)
	}
	if _, err := f.Write(buf); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write after crash: %v, want ErrCrashed", err)
	}
	if err := ifs.SyncDir("."); !errors.Is(err, ErrCrashed) {
		t.Fatalf("syncdir after crash: %v, want ErrCrashed", err)
	}
	st := ifs.Stats()
	if st.TornWrites != 1 || st.FrozenOps < 2 {
		t.Fatalf("stats = %+v, want 1 torn write and ≥2 frozen ops", st)
	}
}

func TestInjectStandingFaults(t *testing.T) {
	ifs := NewInject(3, Faults{WriteENOSPC: 1})
	f, err := ifs.OpenFile("f", os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("xyz")); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("write = %v, want ErrNoSpace", err)
	}

	ifs.SetFaults(Faults{ShortWrite: 1})
	n, err := f.Write([]byte("0123456789"))
	if !errors.Is(err, io.ErrShortWrite) || n <= 0 || n >= 10 {
		t.Fatalf("short write: n=%d err=%v", n, err)
	}

	ifs.SetFaults(Faults{SyncFail: 1})
	if err := f.Sync(); !errors.Is(err, ErrSyncFailed) {
		t.Fatalf("sync = %v, want ErrSyncFailed", err)
	}

	ifs.SetFaults(Faults{RenameFail: 1})
	if err := ifs.Rename("f", "g"); !errors.Is(err, ErrRenameFailed) {
		t.Fatalf("rename = %v, want ErrRenameFailed", err)
	}
	if _, err := ifs.ReadFile("f"); err != nil {
		t.Fatalf("failed rename must leave the old path intact: %v", err)
	}

	ifs.SetFaults(Faults{})
	if err := ifs.Rename("f", "g"); err != nil {
		t.Fatalf("clean rename: %v", err)
	}
}

func TestInjectDeterministicAcrossRuns(t *testing.T) {
	run := func() (Stats, []byte) {
		ifs := NewInject(42, Faults{ShortWrite: 0.3, SyncFail: 0.3, WriteENOSPC: 0.1})
		f, err := ifs.OpenFile("f", os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			_, _ = f.Write([]byte("payload-payload-payload"))
			_ = f.Sync()
		}
		ifs.CrashAfter(3)
		for i := 0; i < 10; i++ {
			_, _ = f.Write([]byte("after-the-cliff"))
		}
		ifs.Recover()
		data, err := ifs.ReadFile("f")
		if err != nil {
			// the entry itself may be lost; that too must be deterministic
			data = nil
		}
		return ifs.Stats(), data
	}
	s1, d1 := run()
	s2, d2 := run()
	if s1 != s2 || !bytes.Equal(d1, d2) {
		t.Fatalf("same seed diverged:\n%+v\n%+v", s1, s2)
	}
}

func TestInjectSeekAndTruncate(t *testing.T) {
	ifs := NewInject(1, Faults{})
	f, err := ifs.OpenFile("f", os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(4); err != nil {
		t.Fatal(err)
	}
	if pos, err := f.Seek(0, io.SeekStart); err != nil || pos != 0 {
		t.Fatalf("seek: %d, %v", pos, err)
	}
	got, err := io.ReadAll(f)
	if err != nil || string(got) != "0123" {
		t.Fatalf("after truncate: %q, %v", got, err)
	}
	if pos, err := f.Seek(0, io.SeekEnd); err != nil || pos != 4 {
		t.Fatalf("seek end: %d, %v", pos, err)
	}
}
