package faultfs

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Injected fault sentinels. Callers classify failures with errors.Is; every
// error InjectFS returns wraps exactly one of these (or fs.ErrNotExist /
// os.ErrClosed for ordinary misuse).
var (
	// ErrCrashed is returned by every IO operation after the programmed
	// crash point fires: the process is "dead" and nothing reaches disk
	// until Recover simulates the reboot.
	ErrCrashed = errors.New("faultfs: simulated crash")
	// ErrNoSpace models ENOSPC on write.
	ErrNoSpace = errors.New("faultfs: no space left on device")
	// ErrSyncFailed models a failed fsync. Per the POSIX contract the
	// kernel may have persisted an arbitrary subset of the dirty pages.
	ErrSyncFailed = errors.New("faultfs: fsync failed")
	// ErrRenameFailed models a transient rename failure; the old path is
	// left intact.
	ErrRenameFailed = errors.New("faultfs: rename failed")
)

// Faults sets the per-operation probability of each standing fault class.
// Zero values disable a class. Faults are drawn from the seeded RNG, so a
// given (seed, workload) pair always injects the same faults at the same
// operations.
type Faults struct {
	// ShortWrite makes Write persist a strict prefix and return
	// io.ErrShortWrite.
	ShortWrite float64
	// WriteENOSPC makes Write persist nothing and return ErrNoSpace.
	WriteENOSPC float64
	// SyncFail makes Sync return ErrSyncFailed after durably persisting
	// only an adversarial subset of the unsynced bytes.
	SyncFail float64
	// RenameFail makes Rename return ErrRenameFailed without moving
	// anything.
	RenameFail float64
}

// Stats counts operations and injected faults, for soak-harness reporting
// and for sizing CrashAfter sweeps.
type Stats struct {
	Ops         int64 // IO operations counted toward the crash point
	ShortWrites int64
	ENOSPCs     int64
	SyncFails   int64
	RenameFails int64
	TornWrites  int64 // writes torn mid-buffer by the crash point
	FrozenOps   int64 // operations rejected after the crash
}

// memFile is one inode: cache is what the process sees (page cache),
// durable is what survives power loss (platters). They converge on a
// successful Sync; a crash replaces cache with an adversarial merge.
type memFile struct {
	cache   []byte
	durable []byte
}

// InjectFS is a deterministic in-memory FS with seed-driven fault
// injection. It models the two-level POSIX durability contract: file bytes
// become crash-durable only on Sync, and directory entries (creations,
// renames, removals) only on SyncDir of the parent. All methods are safe
// for concurrent use; the single mutex also makes the RNG draw order — and
// therefore every injected fault — a deterministic function of the
// operation order.
type InjectFS struct {
	mu     sync.Mutex
	rng    *rand.Rand
	faults Faults
	stats  Stats

	// entries is the live directory tree (flat namespace keyed by cleaned
	// path); durableEntries is the tree as it exists on stable storage.
	entries        map[string]*memFile
	durableEntries map[string]*memFile

	crashAt int64 // ops count at/after which the next op crashes; 0 = armed off
	crashed bool
	tmpSeq  int // deterministic CreateTemp naming
}

// NewInject returns an empty InjectFS whose fault draws and crash-tearing
// are fully determined by seed.
func NewInject(seed int64, faults Faults) *InjectFS {
	return &InjectFS{
		rng:            rand.New(rand.NewSource(seed)),
		faults:         faults,
		entries:        make(map[string]*memFile),
		durableEntries: make(map[string]*memFile),
	}
}

// SetFaults replaces the standing fault probabilities (e.g. to disable
// faults for a recovery pass that must succeed).
func (f *InjectFS) SetFaults(faults Faults) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.faults = faults
}

// Stats returns a snapshot of the operation and fault counters.
func (f *InjectFS) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// Ops returns the IO operation count, the unit CrashAfter is measured in.
func (f *InjectFS) Ops() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats.Ops
}

// CrashAfter arms the crash point: the n-th IO operation from now (n ≥ 1)
// dies mid-flight — a write persists a random prefix into the cache, a sync
// persists an adversarial subset — and every operation after it returns
// ErrCrashed until Recover.
func (f *InjectFS) CrashAfter(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashAt = f.stats.Ops + n
}

// Crash freezes all IO immediately, with no torn final operation — the
// clean "kill -9 between syscalls" case.
func (f *InjectFS) Crash() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashed = true
	f.crashAt = 0
}

// Crashed reports whether the crash point has fired (or Crash was called).
func (f *InjectFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Recover simulates the reboot after a crash: for every inode the surviving
// content is an adversarial merge of its durable bytes and an arbitrary
// subset of its unsynced ones, and every directory entry whose live and
// durable bindings diverge (an un-SyncDir'd create, rename, or remove)
// survives or vanishes at the RNG's whim. Afterwards IO works again and the
// post-crash state is fully durable. Recover is a no-op on a live FS except
// for re-disarming CrashAfter.
func (f *InjectFS) Recover() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		next := make(map[string]*memFile, len(f.durableEntries))
		for path, mf := range f.durableEntries {
			next[path] = mf
		}
		for path, live := range f.entries {
			durable, ok := f.durableEntries[path]
			switch {
			case ok && durable == live:
				// binding already durable
			case f.rng.Intn(2) == 0:
				next[path] = live // the dirty dir page made it out
			case !ok:
				delete(next, path) // entry was never durable; lost
			}
		}
		for path := range f.durableEntries {
			if _, live := f.entries[path]; !live && f.rng.Intn(2) == 0 {
				// un-synced Remove/Rename-away persisted anyway
				delete(next, path)
			}
		}
		seen := make(map[*memFile]bool)
		for _, mf := range next {
			if seen[mf] {
				continue
			}
			seen[mf] = true
			mf.durable = tornMerge(f.rng, mf.durable, mf.cache)
			mf.cache = append([]byte(nil), mf.durable...)
		}
		f.entries = next
		f.durableEntries = make(map[string]*memFile, len(next))
		for path, mf := range next {
			f.durableEntries[path] = mf
		}
	}
	f.crashed = false
	f.crashAt = 0
}

// tornMerge returns what a crashed disk might hold for a file whose durable
// image is old and whose page cache held new: length anywhere between the
// two, each byte beyond the common durable prefix independently old, new,
// or (past both) zero. This is deliberately nastier than real filesystems —
// anything that survives it survives ext4.
func tornMerge(rng *rand.Rand, old, new []byte) []byte {
	lo, hi := len(old), len(new)
	if lo > hi {
		lo, hi = hi, lo
	}
	n := lo + rng.Intn(hi-lo+1)
	out := make([]byte, n)
	for i := range out {
		fromOld := i < len(old) && (i >= len(new) || rng.Intn(2) == 0)
		switch {
		case fromOld:
			out[i] = old[i]
		case i < len(new):
			out[i] = new[i]
		default:
			out[i] = 0
		}
	}
	return out
}

// opLocked counts one IO operation. It returns crashNow=true exactly once —
// for the operation the armed crash point lands on, which must apply its
// adversarial partial effect and then return ErrCrashed — and a non-nil
// error for every operation after that.
func (f *InjectFS) opLocked() (crashNow bool, err error) {
	if f.crashed {
		f.stats.FrozenOps++
		return false, ErrCrashed
	}
	f.stats.Ops++
	if f.crashAt > 0 && f.stats.Ops >= f.crashAt {
		f.crashed = true
		return true, nil
	}
	return false, nil
}

// simpleOpLocked is opLocked for operations with no meaningful partial
// effect: landing the crash on them just freezes the FS.
func (f *InjectFS) simpleOpLocked() error {
	crashNow, err := f.opLocked()
	if err != nil {
		return err
	}
	if crashNow {
		return ErrCrashed
	}
	return nil
}

func notExist(op, path string) error {
	return &fs.PathError{Op: op, Path: path, Err: fs.ErrNotExist}
}

// OpenFile implements FS. Supported flags: O_RDONLY/O_RDWR plus O_CREATE,
// O_TRUNC, O_APPEND — the subset the journal and snapshot paths use.
func (f *InjectFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.simpleOpLocked(); err != nil {
		return nil, err
	}
	name = filepath.Clean(name)
	mf, ok := f.entries[name]
	if !ok {
		if flag&os.O_CREATE == 0 {
			return nil, notExist("open", name)
		}
		mf = &memFile{}
		f.entries[name] = mf
	}
	if flag&os.O_TRUNC != 0 {
		mf.cache = nil
	}
	h := &injectFile{fs: f, mf: mf, name: name}
	if flag&os.O_APPEND != 0 {
		h.pos = int64(len(mf.cache))
	}
	return h, nil
}

// CreateTemp implements FS with deterministic names: the "*" in pattern is
// replaced by a sequence number, so the op stream — and therefore the crash
// sweep — is identical run to run.
func (f *InjectFS) CreateTemp(dir, pattern string) (File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.simpleOpLocked(); err != nil {
		return nil, err
	}
	f.tmpSeq++
	uniq := fmt.Sprintf("inj%06d", f.tmpSeq)
	base := pattern
	if strings.Contains(pattern, "*") {
		base = strings.Replace(pattern, "*", uniq, 1)
	} else {
		base = pattern + uniq
	}
	name := filepath.Clean(filepath.Join(dir, base))
	if _, exists := f.entries[name]; exists {
		return nil, &fs.PathError{Op: "createtemp", Path: name, Err: fs.ErrExist}
	}
	mf := &memFile{}
	f.entries[name] = mf
	return &injectFile{fs: f, mf: mf, name: name}, nil
}

// ReadFile implements FS.
func (f *InjectFS) ReadFile(name string) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.simpleOpLocked(); err != nil {
		return nil, err
	}
	name = filepath.Clean(name)
	mf, ok := f.entries[name]
	if !ok {
		return nil, notExist("open", name)
	}
	return append([]byte(nil), mf.cache...), nil
}

// Rename implements FS. The swap is atomic in the live tree; whether it
// survives a crash before SyncDir is the RNG's call in Recover.
func (f *InjectFS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	crashNow, err := f.opLocked()
	if err != nil {
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: err}
	}
	oldpath, newpath = filepath.Clean(oldpath), filepath.Clean(newpath)
	mf, ok := f.entries[oldpath]
	if !ok {
		if crashNow {
			return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: ErrCrashed}
		}
		return notExist("rename", oldpath)
	}
	if crashNow {
		// The syscall may or may not have reached the dir page before the
		// power died; either way the caller sees only the crash.
		if f.rng.Intn(2) == 0 {
			delete(f.entries, oldpath)
			f.entries[newpath] = mf
		}
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: ErrCrashed}
	}
	if f.faults.RenameFail > 0 && f.rng.Float64() < f.faults.RenameFail {
		f.stats.RenameFails++
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: ErrRenameFailed}
	}
	delete(f.entries, oldpath)
	f.entries[newpath] = mf
	return nil
}

// Remove implements FS.
func (f *InjectFS) Remove(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.simpleOpLocked(); err != nil {
		return &fs.PathError{Op: "remove", Path: name, Err: err}
	}
	name = filepath.Clean(name)
	if _, ok := f.entries[name]; !ok {
		return notExist("remove", name)
	}
	delete(f.entries, name)
	return nil
}

// ReadDir implements FS over the flat namespace: the base names of the live
// entries whose parent is dir, sorted. A directory that holds no entries is
// indistinguishable from a missing one and lists as empty.
func (f *InjectFS) ReadDir(dir string) ([]string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.simpleOpLocked(); err != nil {
		return nil, &fs.PathError{Op: "readdir", Path: dir, Err: err}
	}
	dir = filepath.Clean(dir)
	var names []string
	for path := range f.entries {
		if filepath.Dir(path) == dir {
			names = append(names, filepath.Base(path))
		}
	}
	sort.Strings(names)
	return names, nil
}

// SyncDir implements FS: it makes the live directory entries under dir
// crash-durable. A SyncFail fault leaves an arbitrary subset durable, like
// a real dir fsync that errors after writing some pages.
func (f *InjectFS) SyncDir(dir string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	crashNow, err := f.opLocked()
	if err != nil {
		return &fs.PathError{Op: "syncdir", Path: dir, Err: err}
	}
	fail := crashNow || (f.faults.SyncFail > 0 && f.rng.Float64() < f.faults.SyncFail)
	partial := fail && f.rng.Intn(2) == 0
	dir = filepath.Clean(dir)
	inDir := func(path string) bool { return filepath.Dir(path) == dir }
	for path, mf := range f.entries {
		if !inDir(path) {
			continue
		}
		if fail && !(partial && f.rng.Intn(2) == 0) {
			continue
		}
		f.durableEntries[path] = mf
	}
	for path := range f.durableEntries {
		if !inDir(path) {
			continue
		}
		if _, live := f.entries[path]; live {
			continue
		}
		if fail && !(partial && f.rng.Intn(2) == 0) {
			continue
		}
		delete(f.durableEntries, path)
	}
	if crashNow {
		return &fs.PathError{Op: "syncdir", Path: dir, Err: ErrCrashed}
	}
	if fail {
		f.stats.SyncFails++
		return &fs.PathError{Op: "syncdir", Path: dir, Err: ErrSyncFailed}
	}
	return nil
}

// injectFile is a handle onto a memFile. Position is per-handle, content is
// shared — matching *os.File.
type injectFile struct {
	fs     *InjectFS
	mf     *memFile
	name   string
	pos    int64
	closed bool
}

func (h *injectFile) Name() string { return h.name }

func (h *injectFile) pathErr(op string, err error) error {
	return &fs.PathError{Op: op, Path: h.name, Err: err}
}

func (h *injectFile) Read(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, h.pathErr("read", os.ErrClosed)
	}
	if err := h.fs.simpleOpLocked(); err != nil {
		return 0, h.pathErr("read", err)
	}
	if h.pos >= int64(len(h.mf.cache)) {
		return 0, io.EOF
	}
	n := copy(p, h.mf.cache[h.pos:])
	h.pos += int64(n)
	return n, nil
}

// write copies p[:n] into the cache at the handle position, zero-filling
// any gap left by a Seek past EOF.
func (h *injectFile) write(p []byte, n int) {
	end := h.pos + int64(n)
	for int64(len(h.mf.cache)) < end {
		h.mf.cache = append(h.mf.cache, 0)
	}
	copy(h.mf.cache[h.pos:end], p[:n])
	h.pos = end
}

func (h *injectFile) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, h.pathErr("write", os.ErrClosed)
	}
	crashNow, err := h.fs.opLocked()
	if err != nil {
		return 0, h.pathErr("write", err)
	}
	if crashNow {
		// Torn write: a random prefix made it into the page cache before
		// the power died. Byte granularity — no sector-alignment mercy.
		n := 0
		if len(p) > 0 {
			n = h.fs.rng.Intn(len(p))
		}
		h.write(p, n)
		h.fs.stats.TornWrites++
		return n, h.pathErr("write", ErrCrashed)
	}
	if h.fs.faults.WriteENOSPC > 0 && h.fs.rng.Float64() < h.fs.faults.WriteENOSPC {
		h.fs.stats.ENOSPCs++
		return 0, h.pathErr("write", ErrNoSpace)
	}
	if len(p) > 1 && h.fs.faults.ShortWrite > 0 && h.fs.rng.Float64() < h.fs.faults.ShortWrite {
		n := 1 + h.fs.rng.Intn(len(p)-1)
		h.write(p, n)
		h.fs.stats.ShortWrites++
		return n, h.pathErr("write", io.ErrShortWrite)
	}
	h.write(p, len(p))
	return len(p), nil
}

func (h *injectFile) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return h.pathErr("sync", os.ErrClosed)
	}
	crashNow, err := h.fs.opLocked()
	if err != nil {
		return h.pathErr("sync", err)
	}
	if crashNow || (h.fs.faults.SyncFail > 0 && h.fs.rng.Float64() < h.fs.faults.SyncFail) {
		// A failed fsync persists an arbitrary subset of the dirty pages.
		h.mf.durable = tornMerge(h.fs.rng, h.mf.durable, h.mf.cache)
		if crashNow {
			return h.pathErr("sync", ErrCrashed)
		}
		h.fs.stats.SyncFails++
		return h.pathErr("sync", ErrSyncFailed)
	}
	h.mf.durable = append([]byte(nil), h.mf.cache...)
	return nil
}

func (h *injectFile) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return h.pathErr("close", os.ErrClosed)
	}
	h.closed = true
	if err := h.fs.simpleOpLocked(); err != nil {
		return h.pathErr("close", err)
	}
	return nil
}

func (h *injectFile) Truncate(size int64) error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return h.pathErr("truncate", os.ErrClosed)
	}
	if err := h.fs.simpleOpLocked(); err != nil {
		return h.pathErr("truncate", err)
	}
	if size < 0 {
		return h.pathErr("truncate", fs.ErrInvalid)
	}
	for int64(len(h.mf.cache)) < size {
		h.mf.cache = append(h.mf.cache, 0)
	}
	h.mf.cache = h.mf.cache[:size]
	return nil
}

// Seek repositions the handle. It touches no disk state, so it is not
// counted as an IO operation and works even after a crash.
func (h *injectFile) Seek(offset int64, whence int) (int64, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, h.pathErr("seek", os.ErrClosed)
	}
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = h.pos
	case io.SeekEnd:
		base = int64(len(h.mf.cache))
	default:
		return 0, h.pathErr("seek", fs.ErrInvalid)
	}
	pos := base + offset
	if pos < 0 {
		return 0, h.pathErr("seek", fs.ErrInvalid)
	}
	h.pos = pos
	return pos, nil
}
