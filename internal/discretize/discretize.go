// Package discretize converts continuous feature series into low-cardinality
// discrete event sequences, implementing the paper's two schemes for the
// Backblaze SMART features (§IV-C, Fig 10):
//
//  1. binary — for features dominated by zeros (error counts): an indicator
//     of whether the value is zero;
//  2. quantile — for smoothly distributed features: the 20/40/60/80th
//     training percentiles become category boundaries (5 levels).
//
// It also provides the first-order differencing the paper applies to
// cumulative counters before discretisation (§IV-B).
package discretize

import (
	"fmt"
	"sort"

	"mdes/internal/stats"
)

// Scheme maps a continuous value to a categorical event label.
type Scheme interface {
	Apply(v float64) string
	Levels() []string
	Name() string
}

// Binary is the zero/non-zero indicator scheme.
type Binary struct{}

var _ Scheme = Binary{}

// Apply returns "zero" or "nonzero".
func (Binary) Apply(v float64) string {
	if v == 0 {
		return "zero"
	}
	return "nonzero"
}

// Levels lists the two categories.
func (Binary) Levels() []string { return []string{"nonzero", "zero"} }

// Name identifies the scheme.
func (Binary) Name() string { return "binary" }

// Quantile assigns values to the interval between fitted percentile
// boundaries: level "q0" below the first boundary up to "qN" at the top.
type Quantile struct {
	Boundaries []float64
}

var _ Scheme = (*Quantile)(nil)

// FitQuantile computes boundaries at the given percentiles (e.g. 20, 40, 60,
// 80) of the training sample, dropping duplicate boundaries so levels stay
// distinct.
func FitQuantile(train []float64, percentiles []float64) *Quantile {
	bounds := make([]float64, 0, len(percentiles))
	for _, p := range percentiles {
		bounds = append(bounds, stats.Percentile(train, p))
	}
	sort.Float64s(bounds)
	dedup := bounds[:0]
	for i, b := range bounds {
		if i == 0 || b != dedup[len(dedup)-1] {
			dedup = append(dedup, b)
		}
	}
	return &Quantile{Boundaries: append([]float64(nil), dedup...)}
}

// PaperPercentiles are the boundaries the paper uses (§IV-C).
func PaperPercentiles() []float64 { return []float64{20, 40, 60, 80} }

// Apply returns the quantile band label of v.
func (q *Quantile) Apply(v float64) string {
	// SearchFloat64s returns the count of boundaries strictly below v, so
	// values equal to a boundary belong to the lower band, consistent with
	// P(X <= x).
	return fmt.Sprintf("q%d", sort.SearchFloat64s(q.Boundaries, v))
}

// Levels lists the band labels low to high.
func (q *Quantile) Levels() []string {
	out := make([]string, len(q.Boundaries)+1)
	for i := range out {
		out[i] = fmt.Sprintf("q%d", i)
	}
	return out
}

// Name identifies the scheme.
func (q *Quantile) Name() string { return "quantile" }

// ZeroFraction returns the share of zeros in a sample.
func ZeroFraction(sample []float64) float64 {
	if len(sample) == 0 {
		return 0
	}
	var zeros int
	for _, v := range sample {
		if v == 0 {
			zeros++
		}
	}
	return float64(zeros) / float64(len(sample))
}

// DefaultZeroThreshold is the zero-share above which FitAuto picks the
// binary scheme ("if most of the observations of a feature are equal to
// zero", §IV-C).
const DefaultZeroThreshold = 0.5

// FitAuto selects and fits the scheme for a training sample following the
// paper's rule: binary when zero-dominated, quantile otherwise.
func FitAuto(train []float64) Scheme {
	if ZeroFraction(train) > DefaultZeroThreshold {
		return Binary{}
	}
	return FitQuantile(train, PaperPercentiles())
}

// ApplyAll discretises a whole series.
func ApplyAll(s Scheme, series []float64) []string {
	out := make([]string, len(series))
	for i, v := range series {
		out[i] = s.Apply(v)
	}
	return out
}

// Diff returns the first-order difference of a series, keeping the length by
// defining the first delta as zero — the transformation the paper applies to
// cumulative SMART counters to obtain daily deltas (§IV-B).
func Diff(series []float64) []float64 {
	out := make([]float64, len(series))
	for i := 1; i < len(series); i++ {
		out[i] = series[i] - series[i-1]
	}
	return out
}

// IsCumulative reports whether a series is monotonically non-decreasing —
// the heuristic for identifying cumulative lifetime counters.
func IsCumulative(series []float64) bool {
	for i := 1; i < len(series); i++ {
		if series[i] < series[i-1] {
			return false
		}
	}
	return len(series) > 1
}
