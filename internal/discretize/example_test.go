package discretize_test

import (
	"fmt"

	"mdes/internal/discretize"
)

func ExampleFitAuto() {
	// A zero-dominated error counter gets the binary scheme.
	errors := []float64{0, 0, 0, 0, 0, 0, 0, 2, 0, 1}
	fmt.Println(discretize.FitAuto(errors).Name())

	// A smooth feature gets quintile bands.
	temps := []float64{21, 22, 23, 24, 25, 26, 27, 28, 29, 30}
	scheme := discretize.FitAuto(temps)
	fmt.Println(scheme.Name(), scheme.Apply(21.5), scheme.Apply(29.5))
	// Output:
	// binary
	// quantile q0 q4
}

func ExampleDiff() {
	cumulative := []float64{100, 102, 102, 110}
	fmt.Println(discretize.Diff(cumulative))
	// Output:
	// [0 2 0 8]
}
