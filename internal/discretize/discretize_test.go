package discretize

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBinaryScheme(t *testing.T) {
	b := Binary{}
	if b.Apply(0) != "zero" || b.Apply(1) != "nonzero" || b.Apply(-3.5) != "nonzero" {
		t.Fatal("binary mapping wrong")
	}
	if len(b.Levels()) != 2 || b.Name() != "binary" {
		t.Fatalf("binary metadata: %v %q", b.Levels(), b.Name())
	}
}

func TestFitQuantile(t *testing.T) {
	train := make([]float64, 100)
	for i := range train {
		train[i] = float64(i + 1) // 1..100
	}
	q := FitQuantile(train, PaperPercentiles())
	if len(q.Boundaries) != 4 {
		t.Fatalf("boundaries = %v", q.Boundaries)
	}
	if q.Apply(1) != "q0" || q.Apply(100) != "q4" {
		t.Fatalf("extremes: %s %s", q.Apply(1), q.Apply(100))
	}
	if q.Apply(50) == q.Apply(90) {
		t.Fatal("distinct bands collapsed")
	}
	if len(q.Levels()) != 5 || q.Name() != "quantile" {
		t.Fatalf("quantile metadata: %v", q.Levels())
	}
	// Values equal to a boundary belong to the lower band.
	b := q.Boundaries[0]
	if q.Apply(b) != "q0" {
		t.Fatalf("boundary value band = %s, want q0", q.Apply(b))
	}
}

func TestFitQuantileDedupsBoundaries(t *testing.T) {
	train := []float64{5, 5, 5, 5, 5, 5, 5, 5, 9, 10}
	q := FitQuantile(train, PaperPercentiles())
	for i := 1; i < len(q.Boundaries); i++ {
		if q.Boundaries[i] == q.Boundaries[i-1] {
			t.Fatalf("duplicate boundary: %v", q.Boundaries)
		}
	}
}

func TestZeroFraction(t *testing.T) {
	if got := ZeroFraction([]float64{0, 0, 1, 2}); got != 0.5 {
		t.Fatalf("ZeroFraction = %v", got)
	}
	if got := ZeroFraction(nil); got != 0 {
		t.Fatalf("empty ZeroFraction = %v", got)
	}
}

func TestFitAutoSelectsScheme(t *testing.T) {
	zeroHeavy := []float64{0, 0, 0, 0, 0, 0, 0, 1, 2, 0}
	if FitAuto(zeroHeavy).Name() != "binary" {
		t.Fatal("zero-dominated feature must get binary scheme")
	}
	smooth := make([]float64, 50)
	for i := range smooth {
		smooth[i] = float64(i)
	}
	if FitAuto(smooth).Name() != "quantile" {
		t.Fatal("smooth feature must get quantile scheme")
	}
}

func TestApplyAll(t *testing.T) {
	events := ApplyAll(Binary{}, []float64{0, 3, 0})
	if events[0] != "zero" || events[1] != "nonzero" || events[2] != "zero" {
		t.Fatalf("ApplyAll = %v", events)
	}
	if got := ApplyAll(Binary{}, nil); len(got) != 0 {
		t.Fatalf("empty ApplyAll = %v", got)
	}
}

func TestDiff(t *testing.T) {
	got := Diff([]float64{10, 12, 12, 20})
	want := []float64{0, 2, 0, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Diff = %v, want %v", got, want)
		}
	}
	if len(Diff(nil)) != 0 || len(Diff([]float64{5})) != 1 {
		t.Fatal("Diff length handling wrong")
	}
}

func TestIsCumulative(t *testing.T) {
	if !IsCumulative([]float64{1, 1, 2, 5}) {
		t.Fatal("monotone series must be cumulative")
	}
	if IsCumulative([]float64{1, 3, 2}) {
		t.Fatal("non-monotone series must not be cumulative")
	}
	if IsCumulative([]float64{7}) || IsCumulative(nil) {
		t.Fatal("short series cannot be classified cumulative")
	}
}

// Property: every quantile label is valid and ordering is monotone — larger
// values never land in strictly lower bands.
func TestQuantileMonotoneQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	train := make([]float64, 200)
	for i := range train {
		train[i] = rng.NormFloat64() * 10
	}
	q := FitQuantile(train, PaperPercentiles())
	valid := make(map[string]int)
	for i, l := range q.Levels() {
		valid[l] = i
	}
	f := func(a, b float64) bool {
		a, b = sanitize(a), sanitize(b)
		la, okA := valid[q.Apply(a)]
		lb, okB := valid[q.Apply(b)]
		if !okA || !okB {
			return false
		}
		if a <= b {
			return la <= lb
		}
		return la >= lb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: Diff inverts cumulative sums.
func TestDiffInvertsCumSumQuick(t *testing.T) {
	f := func(deltas []float64) bool {
		cum := make([]float64, len(deltas))
		var run float64
		for i, d := range deltas {
			d = sanitize(d)
			run += d
			cum[i] = run
		}
		back := Diff(cum)
		for i := 1; i < len(back); i++ {
			if math.Abs(back[i]-(cum[i]-cum[i-1])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func sanitize(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 1e6)
}
