package infer

import (
	"encoding/binary"
	"fmt"

	"mdes/internal/bleu"
	"mdes/internal/mat"
	"mdes/internal/nmt"
	"mdes/internal/nn"
)

// transCacheCap mirrors the float64 model's cache bound: when full, the whole
// map is dropped (cheap, and repeat-heavy event languages re-warm instantly).
const transCacheCap = 4096

// transKey packs a token sequence into a map key (same varint scheme as the
// training model's cache). It allocates — the cache path trades allocations
// for skipped decodes; the alloc-free guarantee covers cache-off scoring.
func transKey(toks []int) string {
	var tmp [binary.MaxVarintLen64]byte
	buf := make([]byte, 0, 2*len(toks))
	for _, t := range toks {
		n := binary.PutVarint(tmp[:], int64(t))
		buf = append(buf, tmp[:n]...)
	}
	return string(buf)
}

// ScoreBatch scores n sentences against this pair model: out[i] is the
// smoothed sentence BLEU of the greedy translation of srcs[i] against
// refs[i] — batched f(i,j) of Algorithm 2. Sentences of equal source length
// are decoded together through GEMM kernels; because every kernel is
// row-independent, each score is bit-identical to ScoreSentence on the same
// input. Safe for concurrent use.
func (m *Model) ScoreBatch(srcs, refs [][]int, out []float64) {
	if len(refs) != len(srcs) || len(out) != len(srcs) {
		panic(fmt.Sprintf("infer: ScoreBatch length mismatch: %d srcs, %d refs, %d out",
			len(srcs), len(refs), len(out)))
	}
	if len(srcs) == 0 {
		return
	}
	w := m.getWS()
	defer m.putWS(w)
	m.scoreBatch(w, srcs, refs, out)
}

// ScoreSentence scores one sentence (a batch of one).
func (m *Model) ScoreSentence(src, ref []int) float64 {
	w := m.getWS()
	defer m.putWS(w)
	w.src1[0], w.ref1[0] = src, ref
	m.scoreBatch(w, w.src1[:], w.ref1[:], w.out1[:])
	return w.out1[0]
}

// Translate greedily decodes one source sentence, returning target token ids
// (no BOS/EOS) in a fresh slice the caller may keep. Matches the float64
// model's Translate up to precision.
func (m *Model) Translate(src []int) []int {
	if len(src) == 0 {
		return nil
	}
	w := m.getWS()
	defer m.putWS(w)
	w.src1[0] = src
	w.hyps = resizeOuterInts(w.hyps, 1)
	group := w.intsBuf(1)
	m.translateGroup(w, w.src1[:], group, w.hyps)
	return append([]int(nil), w.hyps[0]...)
}

// scoreBatch is ScoreBatch on a caller-held workspace.
//
//mdes:noalloc
func (m *Model) scoreBatch(w *ws, srcs, refs [][]int, out []float64) {
	n := len(srcs)
	// Group sentences by source length: each equal-length run decodes as one
	// rectangular GEMM batch. Insertion sort on indices is stable (original
	// order within a run), alloc-free, and cheap at serving batch sizes.
	idx := w.intsBuf(n)
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0 && len(srcs[idx[j-1]]) > len(srcs[idx[j]]); j-- {
			idx[j-1], idx[j] = idx[j], idx[j-1]
		}
	}
	w.hyps = resizeOuterInts(w.hyps, n)
	hyps := w.hyps
	for lo := 0; lo < n; {
		hi := lo + 1
		l := len(srcs[idx[lo]])
		for hi < n && len(srcs[idx[hi]]) == l {
			hi++
		}
		if l > 0 {
			// Empty sources translate to nothing; their hyps stay nil.
			m.translateGroup(w, srcs, idx[lo:hi], hyps)
		}
		lo = hi
	}
	for i := range out {
		out[i] = m.scoreOne(w, refs[i], hyps[i])
	}
}

// translateGroup fills hyps[i] for every i in group (all sources the same
// nonzero length), consulting the translation cache around one batched
// decode. Cached hypotheses are cache-owned; decoded ones live in the
// workspace until reset. Either way they are read-only for the caller.
func (m *Model) translateGroup(w *ws, srcs [][]int, group []int, hyps [][]int) {
	miss := group
	m.transMu.Lock()
	cacheOn := !m.transOff
	if cacheOn {
		miss = w.intsBuf(len(group))[:0]
		for _, i := range group {
			if hyp, ok := m.trans[transKey(srcs[i])]; ok {
				hyps[i] = hyp
			} else {
				miss = append(miss, i)
			}
		}
	}
	m.transMu.Unlock()
	if len(miss) == 0 {
		return
	}
	m.decodeGroup(w, srcs, miss, hyps)
	if !cacheOn {
		return
	}
	m.transMu.Lock()
	if !m.transOff {
		for _, i := range miss {
			if len(m.trans) >= transCacheCap {
				m.trans = nil
			}
			if m.trans == nil {
				m.trans = make(map[string][]int, transCacheCap/4)
			}
			m.trans[transKey(srcs[i])] = append([]int(nil), hyps[i]...)
		}
	}
	m.transMu.Unlock()
}

// decodeGroup greedily decodes a batch of equal-length sources in lockstep:
// one GEMM per weight per step instead of one GEMV per sentence per step.
// Output row b of every kernel depends only on input row b, so each
// hypothesis is exactly what a batch of one would produce.
//
//mdes:noalloc
func (m *Model) decodeGroup(w *ws, srcs [][]int, group []int, hyps [][]int) {
	bN := len(group)
	sN := len(srcs[group[0]])
	h, layers := m.cfg.Hidden, m.cfg.Layers
	maxLen := m.cfg.MaxDecodeLen

	x := w.matrix(bN, m.cfg.Embed) // current-step input embeddings
	g := w.matrix(bN, 4*h)         // packed LSTM gate activations
	w.states(layers, bN, h)

	// Encoder: top-layer hidden per (sentence, source position), laid out so
	// sentence b's positions are the contiguous rows [b*sN, (b+1)*sN).
	encTop := w.matrix(bN*sN, h)
	for s := 0; s < sN; s++ {
		for b, i := range group {
			copy(x.Row(b), m.srcEmb.Row(m.clampSrc(srcs[i][s])))
		}
		m.stepStack(w, x, m.enc, g)
		top := w.hs[layers-1]
		for b := 0; b < bN; b++ {
			copy(encTop.Row(b*sN+s), top.Row(b))
		}
	}

	// General attention scores h·(Wa·ē_s); Wa·ē_s is decode-invariant, so
	// project the whole encoding once.
	var waEnc *mat.Matrix32
	if m.kind == nn.AttentionGeneral {
		waEnc = w.matrix(bN*sN, h)
		m.mulInto(w, waEnc, encTop, &m.wa, false)
	}
	var pair, pre *mat.Matrix32
	if m.kind == nn.AttentionConcat {
		pair = w.matrix(bN*sN, 2*h)
		pre = w.matrix(bN*sN, h)
	}

	// The decoder starts from the encoder's final state and the encoder never
	// steps again, so w.hs/w.cs carry over in place.
	scores := w.matrix(bN, sN)
	ctx := w.matrix(bN, h)
	cat := w.matrix(bN, 2*h)
	htl := w.matrix(bN, h)
	logits := w.matrix(bN, m.cfg.TgtVocab)

	tok := w.intsBuf(bN)
	done := w.intsBuf(bN)
	lens := w.intsBuf(bN)
	outTok := w.intsBuf(bN * maxLen)
	for b := range tok {
		tok[b] = nmt.BosID
	}
	remaining := bN
	for t := 0; t < maxLen && remaining > 0; t++ {
		// Finished rows keep stepping with their last token so the batch
		// stays rectangular; their outputs are ignored below.
		for b := range tok {
			copy(x.Row(b), m.tgtEmb.Row(m.clampTgt(tok[b])))
		}
		m.stepStack(w, x, m.dec, g)
		hTop := w.hs[layers-1]

		// Attention scores against every source position.
		switch m.kind {
		case nn.AttentionDot:
			for b := 0; b < bN; b++ {
				hb := hTop.Row(b)
				sc := scores.Row(b)
				for s := 0; s < sN; s++ {
					sc[s] = mat.Dot32(hb, encTop.Row(b*sN+s))
				}
			}
		case nn.AttentionConcat:
			for b := 0; b < bN; b++ {
				hb := hTop.Row(b)
				for s := 0; s < sN; s++ {
					pr := pair.Row(b*sN + s)
					copy(pr[:h], hb)
					copy(pr[h:], encTop.Row(b*sN+s))
				}
			}
			m.mulInto(w, pre, pair, &m.wa, false)
			mat.Tanh32(pre.Data)
			for b := 0; b < bN; b++ {
				sc := scores.Row(b)
				for s := 0; s < sN; s++ {
					sc[s] = mat.Dot32(m.va, pre.Row(b*sN+s))
				}
			}
		default: // nn.AttentionGeneral
			for b := 0; b < bN; b++ {
				hb := hTop.Row(b)
				sc := scores.Row(b)
				for s := 0; s < sN; s++ {
					sc[s] = mat.Dot32(hb, waEnc.Row(b*sN+s))
				}
			}
		}

		// Context, combine, output logits.
		for b := 0; b < bN; b++ {
			sc := scores.Row(b)
			mat.Softmax32(sc, sc)
			cr := ctx.Row(b)
			for j := range cr {
				cr[j] = 0
			}
			for s := 0; s < sN; s++ {
				mat.Axpy32(sc[s], encTop.Row(b*sN+s), cr)
			}
			cc := cat.Row(b)
			copy(cc[:h], cr)
			copy(cc[h:], hTop.Row(b))
		}
		m.mulInto(w, htl, cat, &m.wc, false)
		for b := 0; b < bN; b++ {
			mat.Add32(m.wcB, htl.Row(b))
		}
		mat.Tanh32(htl.Data)
		m.mulInto(w, logits, htl, &m.outW, false)

		for b := 0; b < bN; b++ {
			if done[b] != 0 {
				continue
			}
			lr := logits.Row(b)
			mat.Add32(m.outB, lr)
			// Never emit BOS; treat it as masked out.
			lr[nmt.BosID] = negInf32
			nt := mat.ArgMax32(lr)
			if nt == nmt.EosID {
				done[b] = 1
				remaining--
				continue
			}
			outTok[b*maxLen+lens[b]] = nt
			lens[b]++
			tok[b] = nt
		}
	}
	for b, i := range group {
		hyps[i] = outTok[b*maxLen : b*maxLen+lens[b]]
	}
}

// stepStack advances a stacked LSTM one step for the whole batch: for each
// layer, gates = in·Wxᵀ + hPrev·Whᵀ + b through SigTanhGates, then the cell
// and hidden state matrices in w.hs/w.cs update in place.
//
//mdes:noalloc
func (m *Model) stepStack(w *ws, x *mat.Matrix32, cells []cell, g *mat.Matrix32) {
	in := x
	for l := range cells {
		c := &cells[l]
		h := c.hid
		m.mulInto(w, g, in, &c.wx, false)
		m.mulInto(w, g, w.hs[l], &c.wh, true)
		hl, cl := w.hs[l], w.cs[l]
		for b := 0; b < g.Rows; b++ {
			gr := g.Row(b)
			mat.Add32(c.b, gr)
			mat.SigTanhGates32(gr, h)
			cr, hr := cl.Row(b), hl.Row(b)
			for j := 0; j < h; j++ {
				// C = f·C_prev + i·g̃ ; H = o·tanh(C), gates packed i|f|g̃|o.
				cj := gr[h+j]*cr[j] + gr[j]*gr[2*h+j]
				cr[j] = cj
				hr[j] = cj
			}
			mat.Tanh32(hr)
			for j := 0; j < h; j++ {
				hr[j] *= gr[3*h+j]
			}
		}
		in = hl
	}
}

// scoreOne computes smoothed sentence BLEU of hyp against ref, masking
// unknown reference tokens with per-position sentinels exactly like
// nmt.ScoreSentence (an unknown observed state must never count as
// correctly predicted).
//
//mdes:noalloc
func (m *Model) scoreOne(w *ws, ref, hyp []int) float64 {
	if len(ref) == 0 || len(hyp) == 0 {
		return 0
	}
	masked := ref
	copied := false
	for i, t := range ref {
		if t == nmt.UnkID {
			if !copied {
				mr := w.intsBuf(len(ref))
				copy(mr, ref)
				masked = mr
				copied = true
			}
			masked[i] = -(i + 1)
		}
	}
	return w.scorer.SentenceIDs(masked, hyp, bleu.MaxOrder, bleu.SmoothAddOne)
}
