package infer

import (
	"errors"
	"fmt"

	"mdes/internal/mat"
	"mdes/internal/nmt"
)

// ErrCorrupt reports a persisted inference model that fails structural
// validation — wrong shapes, missing or unknown tensors, or a precision the
// engine cannot serve. Model loading surfaces it (wrapped) so callers can
// distinguish corruption from I/O failure.
var ErrCorrupt = errors.New("infer: corrupt inference model state")

// Tensor is one frozen named tensor in persisted form. Exactly one of F32 or
// Q8 is populated. F32 tensors persist in their stored layout — GEMM weights
// are pre-transposed (Rows=in, Cols=out), embeddings natural, vectors as one
// row. Q8 tensors are out×in int8 codes plus per-row scales.
type Tensor struct {
	Name   string    `json:"name"`
	Rows   int       `json:"rows"`
	Cols   int       `json:"cols"`
	F32    []float32 `json:"f32,omitempty"`
	Q8     []byte    `json:"q8,omitempty"` // int8 codes, byte-cast (base64 in JSON)
	Scales []float32 `json:"scales,omitempty"`
}

// State is the serialisable form of an inference Model. Tensors appear in
// deterministic architecture order, so encoding the same model twice yields
// identical bytes.
type State struct {
	Config    nmt.Config `json:"config"`
	Precision string     `json:"precision"`
	Tensors   []Tensor   `json:"tensors"`
}

// State snapshots the frozen weights for persistence.
func (m *Model) State() State {
	st := State{Config: m.cfg, Precision: m.prec.String()}
	addW := func(name string, w *weight) {
		if w.q != nil {
			q8 := make([]byte, len(w.q.Data))
			for i, v := range w.q.Data {
				q8[i] = byte(v)
			}
			st.Tensors = append(st.Tensors, Tensor{
				Name: name, Rows: w.q.Rows, Cols: w.q.Cols,
				Q8: q8, Scales: append([]float32(nil), w.q.Scales...),
			})
			return
		}
		st.Tensors = append(st.Tensors, Tensor{
			Name: name, Rows: w.t.Rows, Cols: w.t.Cols,
			F32: append([]float32(nil), w.t.Data...),
		})
	}
	addM := func(name string, v *mat.Matrix32) {
		st.Tensors = append(st.Tensors, Tensor{
			Name: name, Rows: v.Rows, Cols: v.Cols,
			F32: append([]float32(nil), v.Data...),
		})
	}
	addV := func(name string, v []float32) {
		st.Tensors = append(st.Tensors, Tensor{
			Name: name, Rows: 1, Cols: len(v),
			F32: append([]float32(nil), v...),
		})
	}
	addM("src_emb", m.srcEmb)
	addM("tgt_emb", m.tgtEmb)
	for si, cs := range [][]cell{m.enc, m.dec} {
		stack := [2]string{"enc", "dec"}[si]
		for l := range cs {
			prefix := fmt.Sprintf("%s.l%d", stack, l)
			addW(prefix+".Wx", &cs[l].wx)
			addW(prefix+".Wh", &cs[l].wh)
			addV(prefix+".b", cs[l].b)
		}
	}
	if m.wa.out > 0 {
		addW("attn.Wa", &m.wa)
	}
	if m.va != nil {
		addV("attn.va", m.va)
	}
	addW("attn.Wc.W", &m.wc)
	addV("attn.Wc.b", m.wcB)
	addW("out.W", &m.outW)
	addV("out.b", m.outB)
	return st
}

// Load reconstructs an inference Model from a persisted State, validating
// precision, tensor names, and every shape against the architecture implied
// by the config. Any mismatch returns an error wrapping ErrCorrupt.
func Load(st State) (*Model, error) {
	prec, err := ParsePrecision(st.Precision)
	if err != nil || (prec != F32 && prec != Int8) {
		return nil, fmt.Errorf("%w: precision %q is not servable", ErrCorrupt, st.Precision)
	}
	if err := st.Config.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	src := &stateSource{prec: prec, tensors: make(map[string]*Tensor, len(st.Tensors))}
	for i := range st.Tensors {
		t := &st.Tensors[i]
		if _, dup := src.tensors[t.Name]; dup {
			return nil, fmt.Errorf("%w: duplicate tensor %q", ErrCorrupt, t.Name)
		}
		src.tensors[t.Name] = t
	}
	m, err := build(st.Config, prec, src)
	if err != nil {
		if errors.Is(err, ErrCorrupt) {
			return nil, err
		}
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return m, nil
}

// stateSource feeds build from persisted tensors, enforcing exact shapes.
type stateSource struct {
	prec    Precision
	tensors map[string]*Tensor
	used    int
}

func (s *stateSource) fetch(name string) (*Tensor, error) {
	t, ok := s.tensors[name]
	if !ok {
		return nil, fmt.Errorf("%w: tensor %q missing", ErrCorrupt, name)
	}
	s.used++
	return t, nil
}

func (s *stateSource) gemm(name string, out, in int) (weight, error) {
	t, err := s.fetch(name)
	if err != nil {
		return weight{}, err
	}
	w := weight{out: out, in: in}
	if s.prec == Int8 {
		if t.Rows != out || t.Cols != in || len(t.F32) != 0 ||
			len(t.Q8) != out*in || len(t.Scales) != out {
			return weight{}, fmt.Errorf("%w: tensor %q: want %dx%d int8 (+%d scales), got %dx%d with %d codes, %d scales, %d f32",
				ErrCorrupt, name, out, in, out, t.Rows, t.Cols, len(t.Q8), len(t.Scales), len(t.F32))
		}
		q := &mat.MatrixQ8{Rows: out, Cols: in, Data: make([]int8, len(t.Q8)), Scales: t.Scales}
		for i, b := range t.Q8 {
			q.Data[i] = int8(b)
		}
		w.q = q
		return w, nil
	}
	// f32 weights persist pre-transposed: in×out.
	if t.Rows != in || t.Cols != out || len(t.F32) != in*out || len(t.Q8) != 0 {
		return weight{}, fmt.Errorf("%w: tensor %q: want %dx%d f32 (transposed), got %dx%d with %d f32, %d codes",
			ErrCorrupt, name, in, out, t.Rows, t.Cols, len(t.F32), len(t.Q8))
	}
	w.t = &mat.Matrix32{Rows: in, Cols: out, Data: t.F32}
	return w, nil
}

func (s *stateSource) f32Mat(name string, rows, cols int) (*mat.Matrix32, error) {
	t, err := s.fetch(name)
	if err != nil {
		return nil, err
	}
	if t.Rows != rows || t.Cols != cols || len(t.F32) != rows*cols || len(t.Q8) != 0 {
		return nil, fmt.Errorf("%w: tensor %q: want %dx%d f32, got %dx%d with %d f32, %d codes",
			ErrCorrupt, name, rows, cols, t.Rows, t.Cols, len(t.F32), len(t.Q8))
	}
	return &mat.Matrix32{Rows: rows, Cols: cols, Data: t.F32}, nil
}

func (s *stateSource) f32Vec(name string, n int) ([]float32, error) {
	t, err := s.fetch(name)
	if err != nil {
		return nil, err
	}
	if len(t.F32) != n || len(t.Q8) != 0 {
		return nil, fmt.Errorf("%w: tensor %q: want %d-vector, got %d f32, %d codes",
			ErrCorrupt, name, n, len(t.F32), len(t.Q8))
	}
	return t.F32, nil
}

func (s *stateSource) finish() error {
	if s.used != len(s.tensors) {
		return fmt.Errorf("%w: state has %d tensors, architecture uses %d", ErrCorrupt, len(s.tensors), s.used)
	}
	return nil
}
