package infer

import (
	"math/rand"
	"testing"

	"mdes/internal/nmt"
	"mdes/internal/nn"
)

// benchState builds a serving-scale model (default config dimensions) whose
// EOS logit is pushed far down, forcing every decode to run the full
// MaxDecodeLen steps — equal decode work at every precision, so the
// benchmark compares kernels rather than luck with early stopping.
func benchState(tb testing.TB) nmt.State {
	cfg := nmt.Config{
		SrcVocab: 64, TgtVocab: 64,
		Embed: 64, Hidden: 64, Layers: 2, Dropout: 0,
		LearningRate: 1e-3, ClipNorm: 5,
		TrainSteps: 1, BatchSize: 1, MaxDecodeLen: 24,
		Attention: nn.AttentionGeneral,
	}
	m, err := nmt.NewModel(cfg, 17)
	if err != nil {
		tb.Fatal(err)
	}
	st := m.State()
	for i := range st.Weights["out.b"] {
		if i == nmt.EosID {
			st.Weights["out.b"][i] = -100
		}
	}
	return st
}

func benchCorpus(n, length, vocab int) (srcs, refs [][]int) {
	rng := rand.New(rand.NewSource(29))
	srcs = make([][]int, n)
	refs = make([][]int, n)
	for i := range srcs {
		s := make([]int, length)
		r := make([]int, length)
		for j := range s {
			s[j] = 3 + rng.Intn(vocab-3)
			r[j] = 3 + rng.Intn(vocab-3)
		}
		srcs[i], refs[i] = s, r
	}
	return srcs, refs
}

const benchBatch = 64

// BenchmarkScoreSentenceF64 is the pre-batching baseline: the float64
// training model scoring one sentence at a time (caching off — distinct
// sentences, as in anomaly scoring of novel windows).
func BenchmarkScoreSentenceF64(b *testing.B) {
	m, err := nmt.LoadModel(benchState(b))
	if err != nil {
		b.Fatal(err)
	}
	m.SetTranslationCaching(false)
	srcs, refs := benchCorpus(benchBatch, 12, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range srcs {
			nmt.ScoreSentence(m, srcs[j], refs[j])
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*benchBatch), "ns/sentence")
}

func benchScoreBatch(b *testing.B, prec Precision) {
	m, err := FromState(benchState(b), prec)
	if err != nil {
		b.Fatal(err)
	}
	m.SetTranslationCaching(false)
	srcs, refs := benchCorpus(benchBatch, 12, 64)
	out := make([]float64, len(srcs))
	m.ScoreBatch(srcs, refs, out) // warm the pooled workspace
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ScoreBatch(srcs, refs, out)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*benchBatch), "ns/sentence")
}

// BenchmarkScoreBatch measures batched GEMM scoring at each inference
// precision; compare ns/sentence against BenchmarkScoreSentenceF64 for the
// headline speedup (cmd/benchjson publishes both in BENCH_score.json).
func BenchmarkScoreBatch(b *testing.B) {
	b.Run("f32", func(b *testing.B) { benchScoreBatch(b, F32) })
	b.Run("int8", func(b *testing.B) { benchScoreBatch(b, Int8) })
}

// BenchmarkModelMemory reports resident model bytes per precision as metrics
// (the ~4× reduction claim); the benchmark body does no work.
func BenchmarkModelMemory(b *testing.B) {
	st := benchState(b)
	var f64Bytes int
	for _, w := range st.Weights {
		f64Bytes += 8 * len(w)
	}
	f32m, err := FromState(st, F32)
	if err != nil {
		b.Fatal(err)
	}
	q8m, err := FromState(st, Int8)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
	}
	b.ReportMetric(float64(f64Bytes), "f64_bytes")
	b.ReportMetric(float64(f32m.MemoryBytes()), "f32_bytes")
	b.ReportMetric(float64(q8m.MemoryBytes()), "int8_bytes")
	b.ReportMetric(float64(f64Bytes)/float64(q8m.MemoryBytes()), "int8_compression_x")
}
