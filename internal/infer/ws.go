package infer

import (
	"mdes/internal/bleu"
	"mdes/internal/mat"
)

// ws is the per-call scratch arena of the inference engine — the float32
// counterpart of nn.Workspace. Matrices, token buffers, and quantisation
// scratch for one ScoreBatch call are bump-allocated out of reusable slabs;
// matrix headers come from a free list. Steady-state batched scoring
// allocates nothing (pinned by TestScoreBatchSteadyStateAllocs).
//
// Lifetime contract: everything handed out is valid until the next reset. A
// ws is not safe for concurrent use; models pool them (sync.Pool) so
// concurrent ScoreBatch calls each get their own.
type ws struct {
	slab []float32
	off  int
	// spill holds slabs that filled up since the last reset; their capacity
	// is folded into one right-sized slab on the next reset so the steady
	// state is a single slab and zero allocations.
	spill      [][]float32
	spillElems int

	ints   []int
	intOff int

	mats []*mat.Matrix32
	matN int

	// hs/cs hold the per-layer LSTM state matrices of the group currently
	// being decoded.
	hs, cs []*mat.Matrix32

	// hyps is the reusable outer slice for decoded hypotheses (inner slices
	// point into the int slab or the translation cache).
	hyps [][]int

	// qbuf/qscales hold one GEMM call's quantized activations (int8 path).
	qbuf    []int8
	qscales []float32

	// src1/ref1/out1 back the single-sentence entry points.
	src1, ref1 [1][]int
	out1       [1]float64

	scorer *bleu.Scorer
}

func newWS() *ws { return &ws{scorer: bleu.NewScorer()} }

const minSlab = 4096

// reset recycles everything handed out since the previous reset.
func (w *ws) reset() {
	if len(w.spill) > 0 {
		total := w.spillElems + len(w.slab)
		w.slab = make([]float32, total)
		w.spill = w.spill[:0]
		w.spillElems = 0
	}
	w.off = 0
	w.intOff = 0
	w.matN = 0
	w.src1[0], w.ref1[0] = nil, nil
}

// vec returns a zeroed length-n float32 slice valid until the next reset.
//
//mdes:noalloc
func (w *ws) vec(n int) []float32 {
	if w.off+n > len(w.slab) {
		w.growFloat(n)
	}
	v := w.slab[w.off : w.off+n : w.off+n]
	w.off += n
	for i := range v {
		v[i] = 0
	}
	return v
}

func (w *ws) growFloat(n int) {
	if len(w.slab) > 0 {
		w.spill = append(w.spill, w.slab)
		w.spillElems += len(w.slab)
	}
	size := 2 * len(w.slab)
	if size < minSlab {
		size = minSlab
	}
	if size < n {
		size = n
	}
	w.slab = make([]float32, size)
	w.off = 0
}

// intsBuf returns a zeroed length-n int slice valid until the next reset.
//
//mdes:noalloc
func (w *ws) intsBuf(n int) []int {
	// Old int slabs are dropped (outstanding slices keep them alive); growth
	// reaches steady state after the first call of the largest shape.
	//mdes:allow(noalloc) slab growth: amortised to zero at steady state
	if w.intOff+n > len(w.ints) {
		size := 2 * len(w.ints)
		if size < minSlab/4 {
			size = minSlab / 4
		}
		if size < n {
			size = n
		}
		w.ints = make([]int, size)
		w.intOff = 0
	}
	v := w.ints[w.intOff : w.intOff+n : w.intOff+n]
	w.intOff += n
	for i := range v {
		v[i] = 0
	}
	return v
}

// matrix returns a zeroed rows×cols matrix backed by the slab, with its
// header drawn from the free list.
//
//mdes:noalloc
func (w *ws) matrix(rows, cols int) *mat.Matrix32 {
	var m *mat.Matrix32
	//mdes:allow(noalloc) header free-list growth: amortised to zero once the list is warm
	if w.matN < len(w.mats) {
		m = w.mats[w.matN]
	} else {
		m = &mat.Matrix32{}
		w.mats = append(w.mats, m)
	}
	w.matN++
	m.Rows, m.Cols = rows, cols
	m.Data = w.vec(rows * cols)
	return m
}

// states sizes hs/cs to layers zeroed B×h state matrices.
//
//mdes:noalloc
func (w *ws) states(layers, b, h int) {
	w.hs = resizeOuterMat(w.hs, layers)
	w.cs = resizeOuterMat(w.cs, layers)
	for l := 0; l < layers; l++ {
		w.hs[l] = w.matrix(b, h)
		w.cs[l] = w.matrix(b, h)
	}
}

// quantScratch returns int8/scale buffers for one quantized GEMM call (B
// activation rows of length n). The buffers are persistent — the next call
// overwrites them — so one pair serves every GEMM in a step.
//
//mdes:noalloc
func (w *ws) quantScratch(b, n int) ([]int8, []float32) {
	if cap(w.qbuf) < b*n {
		//mdes:allow(noalloc) grow-once scratch: amortised to zero at steady state
		w.qbuf = make([]int8, b*n)
	}
	if cap(w.qscales) < b {
		//mdes:allow(noalloc) grow-once scratch: amortised to zero at steady state
		w.qscales = make([]float32, b)
	}
	return w.qbuf[:b*n], w.qscales[:b]
}

// resizeOuterMat grows an outer matrix-pointer slice to length n.
//
//mdes:noalloc
func resizeOuterMat(prev []*mat.Matrix32, n int) []*mat.Matrix32 {
	if cap(prev) < n {
		//mdes:allow(noalloc) grow-once outer slice: amortised to zero at steady state
		return make([]*mat.Matrix32, n)
	}
	return prev[:n]
}

// resizeOuterInts grows an outer [][]int to length n with nil elements.
//
//mdes:noalloc
func resizeOuterInts(prev [][]int, n int) [][]int {
	if cap(prev) < n {
		//mdes:allow(noalloc) grow-once outer slice: amortised to zero at steady state
		return make([][]int, n)
	}
	prev = prev[:n]
	for i := range prev {
		prev[i] = nil
	}
	return prev
}
