package infer

import (
	"encoding/json"
	"errors"
	"math"
	"math/rand"
	"testing"

	"mdes/internal/nmt"
	"mdes/internal/nn"
)

func testConfig(kind nn.AttentionKind) nmt.Config {
	return nmt.Config{
		SrcVocab: 12, TgtVocab: 12,
		Embed: 8, Hidden: 8, Layers: 2, Dropout: 0.2,
		LearningRate: 5e-3, ClipNorm: 5,
		TrainSteps: 10, BatchSize: 8, MaxDecodeLen: 10,
		Attention: kind,
	}
}

func testState(t testing.TB, kind nn.AttentionKind, seed int64) nmt.State {
	t.Helper()
	m, err := nmt.NewModel(testConfig(kind), seed)
	if err != nil {
		t.Fatal(err)
	}
	return m.State()
}

func randSentences(rng *rand.Rand, n, maxLen, vocab int) [][]int {
	out := make([][]int, n)
	for i := range out {
		s := make([]int, rng.Intn(maxLen+1))
		for j := range s {
			s[j] = rng.Intn(vocab)
			if rng.Intn(10) == 0 {
				s[j] = nmt.UnkID // exercise reference masking
			}
		}
		out[i] = s
	}
	return out
}

// TestScoreBatchMatchesSingle pins the load-bearing batching invariant: a
// sentence scored inside a batch gets the bit-identical score it gets alone,
// at both precisions, with the translation cache on and off.
func TestScoreBatchMatchesSingle(t *testing.T) {
	for _, kind := range []nn.AttentionKind{nn.AttentionGeneral, nn.AttentionDot, nn.AttentionConcat} {
		st := testState(t, kind, 11)
		for _, prec := range []Precision{F32, Int8} {
			for _, cache := range []bool{false, true} {
				m, err := FromState(st, prec)
				if err != nil {
					t.Fatal(err)
				}
				m.SetTranslationCaching(cache)
				rng := rand.New(rand.NewSource(23))
				srcs := randSentences(rng, 37, 9, 12)
				refs := randSentences(rng, 37, 9, 12)
				got := make([]float64, len(srcs))
				m.ScoreBatch(srcs, refs, got)
				for i := range srcs {
					want := m.ScoreSentence(srcs[i], refs[i])
					if math.Float64bits(want) != math.Float64bits(got[i]) {
						t.Fatalf("kind=%v prec=%v cache=%v sentence %d: batch %v single %v",
							kind, prec, cache, i, got[i], want)
					}
				}
				// Repeated batch (fully cached when cache=true) must agree.
				again := make([]float64, len(srcs))
				m.ScoreBatch(srcs, refs, again)
				for i := range got {
					if math.Float64bits(again[i]) != math.Float64bits(got[i]) {
						t.Fatalf("kind=%v prec=%v cache=%v sentence %d: rescore %v first %v",
							kind, prec, cache, i, again[i], got[i])
					}
				}
			}
		}
	}
}

// TestInferMatchesF64 pins agreement between the f32 engine and the float64
// reference on a fixed random model: identical greedy translations and
// near-identical sentence scores. Deterministic seeds make the exact
// assertions stable.
func TestInferMatchesF64(t *testing.T) {
	for _, kind := range []nn.AttentionKind{nn.AttentionGeneral, nn.AttentionDot, nn.AttentionConcat} {
		st := testState(t, kind, 5)
		ref64, err := nmt.LoadModel(st)
		if err != nil {
			t.Fatal(err)
		}
		m, err := FromState(st, F32)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(41))
		srcs := randSentences(rng, 25, 9, 12)
		refs := randSentences(rng, 25, 9, 12)
		for i := range srcs {
			want := ref64.Translate(srcs[i])
			got := m.Translate(srcs[i])
			if len(got) != len(want) {
				t.Fatalf("kind=%v sentence %d: f32 hyp %v, f64 hyp %v", kind, i, got, want)
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("kind=%v sentence %d: f32 hyp %v, f64 hyp %v", kind, i, got, want)
				}
			}
			s64 := nmt.ScoreSentence(ref64, srcs[i], refs[i])
			s32 := m.ScoreSentence(srcs[i], refs[i])
			if math.Abs(s64-s32) > 1e-3 {
				t.Fatalf("kind=%v sentence %d: f32 score %v, f64 score %v", kind, i, s32, s64)
			}
		}
	}
}

// TestScoreBatchSteadyStateAllocs pins the hot-path contract: with the
// translation cache off (the configuration the throughput benchmarks run),
// warmed batched scoring allocates nothing.
func TestScoreBatchSteadyStateAllocs(t *testing.T) {
	for _, prec := range []Precision{F32, Int8} {
		m, err := FromState(testState(t, nn.AttentionGeneral, 11), prec)
		if err != nil {
			t.Fatal(err)
		}
		m.SetTranslationCaching(false)
		rng := rand.New(rand.NewSource(7))
		srcs := randSentences(rng, 16, 8, 12)
		refs := randSentences(rng, 16, 8, 12)
		for i := range srcs {
			if len(srcs[i]) == 0 {
				srcs[i] = []int{3}
			}
		}
		out := make([]float64, len(srcs))
		m.ScoreBatch(srcs, refs, out) // warm the pooled workspace
		allocs := testing.AllocsPerRun(100, func() {
			m.ScoreBatch(srcs, refs, out)
		})
		if allocs != 0 {
			t.Fatalf("prec=%v: ScoreBatch allocates %v/op, want 0", prec, allocs)
		}
	}
}

// TestStateRoundTrip pins that persisting and reloading a quantized model
// preserves scoring bit for bit, through JSON like the on-disk model file.
func TestStateRoundTrip(t *testing.T) {
	for _, prec := range []Precision{F32, Int8} {
		orig, err := FromState(testState(t, nn.AttentionGeneral, 3), prec)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(orig.State())
		if err != nil {
			t.Fatal(err)
		}
		var st State
		if err := json.Unmarshal(blob, &st); err != nil {
			t.Fatal(err)
		}
		loaded, err := Load(st)
		if err != nil {
			t.Fatalf("prec=%v: Load: %v", prec, err)
		}
		if loaded.Precision() != prec {
			t.Fatalf("precision %v after round trip, want %v", loaded.Precision(), prec)
		}
		if got, want := loaded.MemoryBytes(), orig.MemoryBytes(); got != want {
			t.Fatalf("MemoryBytes %d after round trip, want %d", got, want)
		}
		rng := rand.New(rand.NewSource(13))
		srcs := randSentences(rng, 20, 9, 12)
		refs := randSentences(rng, 20, 9, 12)
		want := make([]float64, len(srcs))
		got := make([]float64, len(srcs))
		orig.ScoreBatch(srcs, refs, want)
		loaded.ScoreBatch(srcs, refs, got)
		for i := range want {
			if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
				t.Fatalf("prec=%v sentence %d: loaded %v original %v", prec, i, got[i], want[i])
			}
		}
	}
}

// TestLoadRejectsCorruptState pins structural validation of persisted
// inference weights: every class of damage surfaces ErrCorrupt.
func TestLoadRejectsCorruptState(t *testing.T) {
	base, err := FromState(testState(t, nn.AttentionGeneral, 3), Int8)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func(st *State)
	}{
		{"bad precision", func(st *State) { st.Precision = "f17" }},
		{"f64 precision not servable", func(st *State) { st.Precision = "f64" }},
		{"missing tensor", func(st *State) { st.Tensors = st.Tensors[1:] }},
		{"duplicate tensor", func(st *State) { st.Tensors = append(st.Tensors, st.Tensors[0]) }},
		{"unknown tensor", func(st *State) {
			extra := st.Tensors[0]
			extra.Name = "dec.l9.Wx"
			st.Tensors = append(st.Tensors, extra)
		}},
		{"truncated codes", func(st *State) {
			for i := range st.Tensors {
				if len(st.Tensors[i].Q8) > 0 {
					st.Tensors[i].Q8 = st.Tensors[i].Q8[:len(st.Tensors[i].Q8)-1]
					return
				}
			}
		}},
		{"scales length mismatch", func(st *State) {
			for i := range st.Tensors {
				if len(st.Tensors[i].Scales) > 0 {
					st.Tensors[i].Scales = st.Tensors[i].Scales[:len(st.Tensors[i].Scales)-1]
					return
				}
			}
		}},
		{"embedding shape lies", func(st *State) {
			for i := range st.Tensors {
				if st.Tensors[i].Name == "src_emb" {
					st.Tensors[i].Rows++
					return
				}
			}
		}},
		{"precision/payload mismatch", func(st *State) { st.Precision = "f32" }},
		{"invalid config", func(st *State) { st.Config.Hidden = -1 }},
	}
	for _, tc := range cases {
		st := base.State()
		tc.mut(&st)
		if _, err := Load(st); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s: Load error %v, want ErrCorrupt", tc.name, err)
		}
	}
	// The untouched state must still load.
	if _, err := Load(base.State()); err != nil {
		t.Fatalf("pristine state failed to load: %v", err)
	}
}

// TestFromStateRejectsF64 pins that F64 is a routing sentinel, not an engine
// precision.
func TestFromStateRejectsF64(t *testing.T) {
	if _, err := FromState(testState(t, nn.AttentionGeneral, 3), F64); err == nil {
		t.Fatal("FromState(F64) succeeded, want error")
	}
	if _, err := FromState(testState(t, nn.AttentionGeneral, 3), Precision(9)); err == nil {
		t.Fatal("FromState(9) succeeded, want error")
	}
}

// TestMemoryCompression pins the resident-size ordering of the formats and
// that GEMM weights compress ~4×/~8× vs the float64 training weights.
func TestMemoryCompression(t *testing.T) {
	st := testState(t, nn.AttentionGeneral, 3)
	var f64Bytes int
	for _, wts := range st.Weights {
		f64Bytes += 8 * len(wts)
	}
	f32m, err := FromState(st, F32)
	if err != nil {
		t.Fatal(err)
	}
	q8m, err := FromState(st, Int8)
	if err != nil {
		t.Fatal(err)
	}
	if !(q8m.MemoryBytes() < f32m.MemoryBytes() && f32m.MemoryBytes() < f64Bytes) {
		t.Fatalf("sizes not ordered: int8 %d, f32 %d, f64 %d",
			q8m.MemoryBytes(), f32m.MemoryBytes(), f64Bytes)
	}
	if 2*f32m.MemoryBytes() != f64Bytes {
		t.Fatalf("f32 size %d, want exactly half of f64 %d", f32m.MemoryBytes(), f64Bytes)
	}
}

func TestParsePrecision(t *testing.T) {
	for in, want := range map[string]Precision{"f64": F64, "f32": F32, "int8": Int8, "q8": Int8} {
		got, err := ParsePrecision(in)
		if err != nil || got != want {
			t.Fatalf("ParsePrecision(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParsePrecision("fp16"); err == nil {
		t.Fatal("ParsePrecision accepted fp16")
	}
	if F64.String() != "f64" || F32.String() != "f32" || Int8.String() != "int8" {
		t.Fatal("Precision.String mismatch")
	}
}
