// Package infer is the reduced-precision batched inference engine for
// trained NMT pair models. Training stays float64 (internal/nmt); at publish
// time a model's weights are frozen into float32 (GEMM weights stored
// pre-transposed) or int8 (row-quantized with per-row scales), and scoring
// runs through ScoreBatch, which packs many sentences against one pair model
// into GEMM calls over pooled workspaces.
//
// Two invariants make batching safe to deploy:
//
//   - Batched == single, bit for bit. Every kernel is row-independent, so a
//     sentence scored in a batch of 64 gets exactly the score it gets alone
//     (TestScoreBatchMatchesSingle). Cross-tenant batching in the serving
//     pool is therefore invisible to scores.
//   - Reduced precision preserves the BLEU ranking. f32/int8 scores differ
//     from float64 in low-order digits; flagged-day parity on the golden
//     quick-plant trajectory is asserted by internal/experiments.
package infer

import (
	"fmt"
	"math"
	"sync"

	"mdes/internal/mat"
	"mdes/internal/nmt"
	"mdes/internal/nn"
)

// Precision selects the numeric format of the scoring path. The zero value
// F64 means "no inference engine — score through the float64 training
// model"; F32 and Int8 are the reduced-precision engine formats.
type Precision int

const (
	F64 Precision = iota
	F32
	Int8
)

// String names the precision the way the -score-precision flag spells it.
func (p Precision) String() string {
	switch p {
	case F64:
		return "f64"
	case F32:
		return "f32"
	case Int8:
		return "int8"
	default:
		return fmt.Sprintf("precision(%d)", int(p))
	}
}

// ParsePrecision parses the -score-precision flag values.
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "f64", "float64":
		return F64, nil
	case "f32", "float32":
		return F32, nil
	case "int8", "q8":
		return Int8, nil
	default:
		return 0, fmt.Errorf("infer: unknown precision %q (want f64, f32, or int8)", s)
	}
}

// weight is one frozen GEMM weight in the active precision. Exactly one of
// t/q is set: float32 weights are stored pre-transposed (in×out) so batched
// products Y = X·Wᵀ stream rows of both operands; int8 weights stay out×in
// because the integer kernel is row-dot-shaped and its per-row scales align
// with output channels.
type weight struct {
	out, in int
	t       *mat.Matrix32
	q       *mat.MatrixQ8
}

// bytes reports the resident size of the frozen weight.
func (w *weight) bytes() int {
	if w.q != nil {
		return len(w.q.Data) + 4*len(w.q.Scales)
	}
	if w.t != nil {
		return 4 * len(w.t.Data)
	}
	return 0
}

// cell is one frozen LSTM layer.
type cell struct {
	wx, wh  weight
	b       []float32
	in, hid int
}

// Model is a frozen reduced-precision inference model built from a trained
// nmt.Model's state. It scores; it never trains. Safe for concurrent use.
type Model struct {
	cfg  nmt.Config
	prec Precision
	kind nn.AttentionKind

	srcEmb, tgtEmb *mat.Matrix32 // vocab×embed, float32 in both precisions
	enc, dec       []cell
	wa             weight    // general: h×h; concat: h×2h (unused for dot)
	va             []float32 // concat scoring vector
	wc             weight    // h×2h combine projection
	wcB            []float32
	outW           weight // V×h output projection
	outB           []float32

	wsPool sync.Pool

	// Greedy decoding is deterministic and discrete event languages repeat
	// sentences constantly, so translations are memoised exactly like the
	// float64 model's cache (same key scheme, same full-drop eviction).
	transMu  sync.Mutex
	trans    map[string][]int
	transOff bool
}

// FromState freezes a trained model snapshot into an inference model at the
// given precision (F32 or Int8).
func FromState(st nmt.State, prec Precision) (*Model, error) {
	if prec != F32 && prec != Int8 {
		return nil, fmt.Errorf("infer: %v is not an inference precision (want f32 or int8)", prec)
	}
	return build(st.Config, prec, &f64Source{weights: st.Weights, prec: prec})
}

// tensorSource hands build one named tensor at a time. The f64 source
// quantizes training weights; the state source validates persisted tensors.
type tensorSource interface {
	// gemm returns the frozen out×in GEMM weight registered under name.
	gemm(name string, out, in int) (weight, error)
	// f32Mat returns a rows×cols float32 matrix (embeddings).
	f32Mat(name string, rows, cols int) (*mat.Matrix32, error)
	// f32Vec returns a length-n float32 vector (biases, scoring vectors).
	f32Vec(name string, n int) ([]float32, error)
	// finish reports tensors the source holds that build never asked for.
	finish() error
}

// build assembles a Model by walking the architecture implied by cfg and
// pulling each tensor from src. FromState and Load share this walk, so the
// persisted-layout validation can never drift from the quantisation step.
func build(cfg nmt.Config, prec Precision, src tensorSource) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	kind := cfg.Attention
	if kind == 0 {
		kind = nn.AttentionGeneral
	}
	m := &Model{cfg: cfg, prec: prec, kind: kind}
	var err error
	fail := func(e error) bool {
		if e != nil && err == nil {
			err = e
		}
		return err != nil
	}
	get := func(w *weight, name string, out, in int) {
		v, e := src.gemm(name, out, in)
		if !fail(e) {
			*w = v
		}
	}
	m.srcEmb, err = src.f32Mat("src_emb", cfg.SrcVocab, cfg.Embed)
	if err != nil {
		return nil, err
	}
	if m.tgtEmb, err = src.f32Mat("tgt_emb", cfg.TgtVocab, cfg.Embed); err != nil {
		return nil, err
	}
	h := cfg.Hidden
	for _, stack := range []struct {
		name  string
		cells *[]cell
	}{{"enc", &m.enc}, {"dec", &m.dec}} {
		*stack.cells = make([]cell, cfg.Layers)
		for l := 0; l < cfg.Layers; l++ {
			in := cfg.Embed
			if l > 0 {
				in = h
			}
			c := &(*stack.cells)[l]
			c.in, c.hid = in, h
			prefix := fmt.Sprintf("%s.l%d", stack.name, l)
			get(&c.wx, prefix+".Wx", 4*h, in)
			get(&c.wh, prefix+".Wh", 4*h, h)
			if err == nil {
				c.b, err = src.f32Vec(prefix+".b", 4*h)
			}
		}
	}
	switch kind {
	case nn.AttentionGeneral:
		get(&m.wa, "attn.Wa", h, h)
	case nn.AttentionConcat:
		get(&m.wa, "attn.Wa", h, 2*h)
		if err == nil {
			m.va, err = src.f32Vec("attn.va", h)
		}
	case nn.AttentionDot:
		// no scoring parameters
	default:
		return nil, fmt.Errorf("infer: unknown attention kind %d", kind)
	}
	get(&m.wc, "attn.Wc.W", h, 2*h)
	if err == nil {
		m.wcB, err = src.f32Vec("attn.Wc.b", h)
	}
	get(&m.outW, "out.W", cfg.TgtVocab, h)
	if err == nil {
		m.outB, err = src.f32Vec("out.b", cfg.TgtVocab)
	}
	if err != nil {
		return nil, err
	}
	if err := src.finish(); err != nil {
		return nil, err
	}
	return m, nil
}

// f64Source freezes float64 training weights into the target precision.
type f64Source struct {
	weights map[string][]float64
	prec    Precision
	used    int
}

func (s *f64Source) fetch(name string, want int) ([]float64, error) {
	data, ok := s.weights[name]
	if !ok {
		return nil, fmt.Errorf("infer: weight %q missing from model state", name)
	}
	if len(data) != want {
		return nil, fmt.Errorf("infer: weight %q has %d elements, want %d", name, len(data), want)
	}
	s.used++
	return data, nil
}

func (s *f64Source) gemm(name string, out, in int) (weight, error) {
	data, err := s.fetch(name, out*in)
	if err != nil {
		return weight{}, err
	}
	w := weight{out: out, in: in}
	src := mat.FromSlice(out, in, data)
	if s.prec == Int8 {
		w.q = mat.QuantizeQ8(src)
	} else {
		w.t = src.T32()
	}
	return w, nil
}

func (s *f64Source) f32Mat(name string, rows, cols int) (*mat.Matrix32, error) {
	data, err := s.fetch(name, rows*cols)
	if err != nil {
		return nil, err
	}
	return mat.FromSlice(rows, cols, data).To32(), nil
}

func (s *f64Source) f32Vec(name string, n int) ([]float32, error) {
	data, err := s.fetch(name, n)
	if err != nil {
		return nil, err
	}
	out := make([]float32, n)
	for i, v := range data {
		out[i] = float32(v)
	}
	return out, nil
}

func (s *f64Source) finish() error {
	if s.used != len(s.weights) {
		return fmt.Errorf("infer: model state has %d weights, architecture uses %d", len(s.weights), s.used)
	}
	return nil
}

// Precision reports the engine's numeric format.
func (m *Model) Precision() Precision { return m.prec }

// Config returns the underlying NMT configuration.
func (m *Model) Config() nmt.Config { return m.cfg }

// MemoryBytes reports the resident size of the frozen weights — the number
// the ~4× model-memory reduction claim in BENCH_score.json is measured on.
func (m *Model) MemoryBytes() int {
	total := 4 * (len(m.srcEmb.Data) + len(m.tgtEmb.Data))
	total += 4 * (len(m.va) + len(m.wcB) + len(m.outB))
	for _, cs := range [][]cell{m.enc, m.dec} {
		for i := range cs {
			total += cs[i].wx.bytes() + cs[i].wh.bytes() + 4*len(cs[i].b)
		}
	}
	total += m.wa.bytes() + m.wc.bytes() + m.outW.bytes()
	return total
}

// SetTranslationCaching toggles the per-model translation cache (on by
// default). Turning it off also drops cached translations.
func (m *Model) SetTranslationCaching(on bool) {
	m.transMu.Lock()
	m.transOff = !on
	m.trans = nil
	m.transMu.Unlock()
}

func (m *Model) getWS() *ws {
	if v := m.wsPool.Get(); v != nil {
		return v.(*ws)
	}
	return newWS()
}

func (m *Model) putWS(w *ws) {
	w.reset()
	m.wsPool.Put(w)
}

func (m *Model) clampSrc(tok int) int {
	if tok < 0 || tok >= m.cfg.SrcVocab {
		return nmt.UnkID
	}
	return tok
}

func (m *Model) clampTgt(tok int) int {
	if tok < 0 || tok >= m.cfg.TgtVocab {
		return nmt.UnkID
	}
	return tok
}

// mulInto computes dst = x·wᵀ (add=false) or dst += x·wᵀ (add=true) for a
// B×in activation matrix against a frozen out×in weight, dispatching on the
// weight's precision. The int8 path quantizes each activation row on the fly.
//
//mdes:noalloc
func (m *Model) mulInto(w *ws, dst, x *mat.Matrix32, wt *weight, add bool) {
	if wt.t != nil {
		if add {
			x.MulMatAdd(dst, wt.t)
		} else {
			x.MulMat(dst, wt.t)
		}
		return
	}
	b, n := x.Rows, x.Cols
	qbuf, qscales := w.quantScratch(b, n)
	for i := 0; i < b; i++ {
		qscales[i] = mat.QuantizeVec8(qbuf[i*n:(i+1)*n], x.Row(i))
	}
	if add {
		wt.q.MulMatQ8Add(dst, qbuf, qscales)
	} else {
		wt.q.MulMatQ8(dst, qbuf, qscales)
	}
}

var negInf32 = float32(math.Inf(-1))
