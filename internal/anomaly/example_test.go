package anomaly_test

import (
	"fmt"

	"mdes/internal/anomaly"
)

func ExampleDetector_Evaluate() {
	// Two valid relationships with their training BLEU scores s(i,j).
	det := anomaly.NewDetectorFromRelationships([]anomaly.Relationship{
		{Src: "pump", Tgt: "valve", TrainScore: 85},
		{Src: "valve", Tgt: "pump", TrainScore: 88},
	})
	// Test-time scores f(i,j) per timestamp: healthy, then broken.
	points, _ := det.Evaluate([][]float64{
		{95, 92}, // both fine
		{40, 91}, // pump->valve broken
		{30, 20}, // both broken
	})
	for _, p := range points {
		fmt.Printf("t=%d a_t=%.2f broken=%d\n", p.T, p.Score, len(p.Broken))
	}
	// Output:
	// t=0 a_t=0.00 broken=0
	// t=1 a_t=0.50 broken=1
	// t=2 a_t=1.00 broken=2
}

func ExampleSharpIncrease() {
	scores := []float64{0.1, 0.12, 0.1, 0.75, 0.8}
	t, ok := anomaly.SharpIncrease(scores, 0.5)
	fmt.Println(t, ok)
	// Output:
	// 3 true
}
