package anomaly

import (
	"math"
	"testing"
	"testing/quick"

	"mdes/internal/graph"
)

func sampleGraph() *graph.Graph {
	g := graph.New()
	g.AddEdge("a", "b", 85)
	g.AddEdge("b", "a", 82)
	g.AddEdge("a", "c", 95) // outside [80,90): not a valid model
	g.AddEdge("c", "b", 88)
	return g
}

func TestNewDetectorSelectsValidRange(t *testing.T) {
	d := NewDetector(sampleGraph(), graph.Range{Lo: 80, Hi: 90})
	if d.NumValid() != 3 {
		t.Fatalf("valid models = %d, want 3", d.NumValid())
	}
	for _, r := range d.Relationships() {
		if r.TrainScore < 80 || r.TrainScore >= 90 {
			t.Fatalf("invalid model selected: %+v", r)
		}
	}
}

func TestEvaluateAlgorithm2(t *testing.T) {
	d := NewDetector(sampleGraph(), graph.Range{Lo: 80, Hi: 90})
	// Relationship order is deterministic: a->b(85), b->a(82), c->b(88).
	tests := [][]float64{
		{90, 85, 95}, // nothing broken
		{80, 85, 95}, // one broken: f(a,b)=80 < 85
		{10, 10, 10}, // all broken
	}
	points, err := d.Evaluate(tests)
	if err != nil {
		t.Fatal(err)
	}
	wantScores := []float64{0, 1.0 / 3.0, 1}
	for i, p := range points {
		if math.Abs(p.Score-wantScores[i]) > 1e-12 {
			t.Fatalf("a_%d = %v, want %v", i, p.Score, wantScores[i])
		}
		if p.T != i || p.Valid != 3 {
			t.Fatalf("point %d = %+v", i, p)
		}
	}
	if len(points[1].Broken) != 1 || points[1].Broken[0].Src != "a" {
		t.Fatalf("W_1 = %+v", points[1].Broken)
	}
	if points[1].Broken[0].TestScore != 80 || points[1].Broken[0].TrainScore != 85 {
		t.Fatalf("alert scores = %+v", points[1].Broken[0])
	}
}

func TestEvaluateEqualScoreNotBroken(t *testing.T) {
	// f(i,j) == s(i,j) is not "smaller than", so not broken (Algorithm 2).
	d := NewDetectorFromRelationships([]Relationship{{Src: "a", Tgt: "b", TrainScore: 85}})
	points, err := d.Evaluate([][]float64{{85}})
	if err != nil {
		t.Fatal(err)
	}
	if points[0].Score != 0 {
		t.Fatalf("equal score marked broken: %+v", points[0])
	}
}

func TestEvaluateShapeMismatch(t *testing.T) {
	d := NewDetector(sampleGraph(), graph.Range{Lo: 80, Hi: 90})
	if _, err := d.Evaluate([][]float64{{1, 2}}); err == nil {
		t.Fatal("mismatched row length must error")
	}
}

func TestEvaluateNoValidModels(t *testing.T) {
	d := NewDetector(graph.New(), graph.Range{Lo: 80, Hi: 90})
	points, err := d.Evaluate([][]float64{{}, {}})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if p.Score != 0 || p.Valid != 0 {
			t.Fatalf("no-model point = %+v", p)
		}
	}
}

func TestScoresAndThreshold(t *testing.T) {
	points := []Point{{T: 0, Score: 0.1}, {T: 1, Score: 0.8}, {T: 2, Score: 0.5}}
	s := Scores(points)
	if len(s) != 3 || s[1] != 0.8 {
		t.Fatalf("Scores = %v", s)
	}
	hits := Threshold(points, 0.5)
	if len(hits) != 2 || hits[0] != 1 || hits[1] != 2 {
		t.Fatalf("Threshold = %v", hits)
	}
	if got := Threshold(points, 2); got != nil {
		t.Fatalf("impossible threshold hits = %v", got)
	}
}

func TestSharpIncrease(t *testing.T) {
	cases := []struct {
		scores []float64
		jump   float64
		wantT  int
		wantOK bool
	}{
		{[]float64{0.1, 0.1, 0.7, 0.8}, 0.5, 2, true},
		{[]float64{0.1, 0.2, 0.3}, 0.5, 0, false},
		{[]float64{0.9, 0.9, 0.9}, 0.5, 0, false}, // high but flat
		{[]float64{0.0, 0.5}, 0.5, 1, true},
		{nil, 0.5, 0, false},
		{[]float64{0.3}, 0.5, 0, false},
	}
	for i, tc := range cases {
		gotT, ok := SharpIncrease(tc.scores, tc.jump)
		if ok != tc.wantOK || gotT != tc.wantT {
			t.Errorf("case %d: SharpIncrease = (%d, %v), want (%d, %v)", i, gotT, ok, tc.wantT, tc.wantOK)
		}
	}
}

func TestDiagnose(t *testing.T) {
	local := graph.New()
	// Cluster 0: p, q, r fully broken. Cluster 1: x, y healthy.
	local.AddEdge("p", "q", 85)
	local.AddEdge("q", "r", 85)
	local.AddEdge("x", "y", 85)
	comms := [][]string{{"p", "q", "r"}, {"x", "y"}}
	broken := []Alert{
		{Src: "p", Tgt: "q", TrainScore: 85, TestScore: 20},
		{Src: "q", Tgt: "r", TrainScore: 85, TestScore: 30},
	}
	diag := Diagnose(local, comms, broken)
	if len(diag.Clusters) != 2 {
		t.Fatalf("clusters = %+v", diag.Clusters)
	}
	top := diag.Clusters[0]
	if top.BrokenFraction != 1 || top.BrokenEdges != 2 || top.TotalEdges != 2 {
		t.Fatalf("top cluster = %+v", top)
	}
	if diag.Clusters[1].BrokenFraction != 0 {
		t.Fatalf("healthy cluster = %+v", diag.Clusters[1])
	}
	if len(diag.Faulty) != 1 || diag.Faulty[0].Members[0] != "p" {
		t.Fatalf("Faulty = %+v", diag.Faulty)
	}
}

func TestDiagnoseBridgeEdgeCountsBothClusters(t *testing.T) {
	local := graph.New()
	local.AddEdge("p", "x", 85) // bridge between the two clusters
	comms := [][]string{{"p"}, {"x"}}
	diag := Diagnose(local, comms, []Alert{{Src: "p", Tgt: "x"}})
	for _, c := range diag.Clusters {
		if c.TotalEdges != 1 || c.BrokenEdges != 1 {
			t.Fatalf("bridge accounting = %+v", c)
		}
	}
}

func TestDiagnoseEmpty(t *testing.T) {
	diag := Diagnose(graph.New(), nil, nil)
	if len(diag.Clusters) != 0 || len(diag.Faulty) != 0 {
		t.Fatalf("empty diagnosis = %+v", diag)
	}
}

// Property: a_t is always in [0,1] and equals broken/valid exactly.
func TestAnomalyScoreBoundsQuick(t *testing.T) {
	rels := []Relationship{
		{Src: "a", Tgt: "b", TrainScore: 85},
		{Src: "b", Tgt: "c", TrainScore: 82},
		{Src: "c", Tgt: "a", TrainScore: 88},
	}
	d := NewDetectorFromRelationships(rels)
	f := func(f1, f2, f3 float64) bool {
		row := []float64{mod100(f1), mod100(f2), mod100(f3)}
		points, err := d.Evaluate([][]float64{row})
		if err != nil {
			return false
		}
		p := points[0]
		if p.Score < 0 || p.Score > 1 {
			return false
		}
		return p.Score == float64(len(p.Broken))/3.0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func mod100(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Abs(math.Mod(v, 100))
}
