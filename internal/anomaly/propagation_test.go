package anomaly

import (
	"testing"
)

func tracePoints() []Point {
	mk := func(t int, score float64, pairs ...[2]string) Point {
		p := Point{T: t, Score: score, Valid: 4}
		for _, pr := range pairs {
			p.Broken = append(p.Broken, Alert{Src: pr[0], Tgt: pr[1]})
		}
		return p
	}
	return []Point{
		mk(0, 0.0),
		mk(1, 0.25, [2]string{"a", "b"}),
		mk(2, 0.5, [2]string{"a", "b"}, [2]string{"b", "c"}),
		mk(3, 0.75, [2]string{"a", "b"}, [2]string{"b", "c"}, [2]string{"c", "d"}),
	}
}

func TestPropagationWindows(t *testing.T) {
	trace := Propagation(tracePoints(), 2)
	if len(trace) != 2 {
		t.Fatalf("windows = %d, want 2", len(trace))
	}
	w0, w1 := trace[0], trace[1]
	if w0.FromT != 0 || w0.ToT != 2 || w1.FromT != 2 || w1.ToT != 4 {
		t.Fatalf("window bounds: %+v %+v", w0, w1)
	}
	if w0.MeanScore != 0.125 || w0.PeakScore != 0.25 {
		t.Fatalf("w0 scores = %v/%v", w0.MeanScore, w0.PeakScore)
	}
	// Window 0 implicates only a and b.
	if len(w0.Implicated) != 2 || w0.Implicated[0] != "a" || w0.Implicated[1] != "b" {
		t.Fatalf("w0 implicated = %v", w0.Implicated)
	}
	// Window 1: b participates in the most breaks (a->b twice + b->c twice).
	if w1.Implicated[0] != "b" {
		t.Fatalf("w1 front = %v", w1.Implicated)
	}
	if w1.SensorHits["b"] != 4 || w1.SensorHits["d"] != 1 {
		t.Fatalf("w1 hits = %v", w1.SensorHits)
	}
}

func TestPropagationDefaultsAndEmpty(t *testing.T) {
	if got := Propagation(nil, 2); got != nil {
		t.Fatalf("empty points trace = %v", got)
	}
	trace := Propagation(tracePoints(), 0) // window 0 -> 1 point per window
	if len(trace) != 4 {
		t.Fatalf("per-point windows = %d", len(trace))
	}
	// Uneven final window.
	trace = Propagation(tracePoints(), 3)
	if len(trace) != 2 || trace[1].FromT != 3 {
		t.Fatalf("uneven windows = %+v", trace)
	}
}

func TestNewlyImplicated(t *testing.T) {
	trace := Propagation(tracePoints(), 1)
	fresh := NewlyImplicated(trace)
	if len(fresh) != 4 {
		t.Fatalf("fresh length = %d", len(fresh))
	}
	if len(fresh[0]) != 0 {
		t.Fatalf("window 0 should implicate nobody: %v", fresh[0])
	}
	if len(fresh[1]) != 2 { // a, b appear
		t.Fatalf("window 1 fresh = %v", fresh[1])
	}
	if len(fresh[2]) != 1 || fresh[2][0] != "c" {
		t.Fatalf("window 2 fresh = %v", fresh[2])
	}
	if len(fresh[3]) != 1 || fresh[3][0] != "d" {
		t.Fatalf("window 3 fresh = %v", fresh[3])
	}
}
