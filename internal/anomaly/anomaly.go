// Package anomaly implements the paper's Algorithm 2 and the downstream
// analyses built on it: per-timestamp anomaly scores a_t (the fraction of
// valid pairwise relationships that are broken), the sensor-pair alert
// status W_t, fault diagnosis over local subgraphs (Fig 9), and the
// sharp-increase detector used for disk failures (Fig 12).
//
// The package is deliberately model-free: it consumes the training scores
// s(i,j) from the relationship graph and caller-supplied test scores
// f(i,j) per timestamp, so the algorithm can be tested independently of the
// NMT substrate.
package anomaly

import (
	"fmt"
	"sort"

	"mdes/internal/graph"
)

// Relationship is one valid directional model with its training BLEU s(i,j).
type Relationship struct {
	Src, Tgt   string
	TrainScore float64
}

// Detector holds the valid relationships selected from a relationship graph.
type Detector struct {
	rels []Relationship
}

// NewDetector selects as valid every edge of g whose training score falls in
// the valid range (the paper finds [80,90) best; §II-C "the validity of NMT
// model g(i,j) is determined by the range of BLEU score set by the user").
func NewDetector(g *graph.Graph, valid graph.Range) *Detector {
	d := &Detector{}
	for _, e := range g.Edges() {
		if valid.Contains(e.Score) {
			d.rels = append(d.rels, Relationship{Src: e.Src, Tgt: e.Tgt, TrainScore: e.Score})
		}
	}
	return d
}

// NewDetectorFromRelationships builds a detector from an explicit list.
func NewDetectorFromRelationships(rels []Relationship) *Detector {
	return &Detector{rels: append([]Relationship(nil), rels...)}
}

// Relationships returns the valid relationships in evaluation order; test
// score matrices must use the same order.
func (d *Detector) Relationships() []Relationship {
	return append([]Relationship(nil), d.rels...)
}

// NumValid returns p_t, the number of valid models.
func (d *Detector) NumValid() int { return len(d.rels) }

// Alert is one broken relationship at a timestamp: f(i,j) < s(i,j).
type Alert struct {
	Src, Tgt   string
	TrainScore float64 // s(i,j)
	TestScore  float64 // f(i,j)
}

// Point is the detection output for one timestamp t.
type Point struct {
	T      int
	Score  float64 // a_t = broken / valid
	Valid  int     // p_t
	Broken []Alert // W_t, the alert status
}

// Evaluate runs Algorithm 2 over test scores indexed [t][k], where k follows
// Relationships() order. It returns one Point per timestamp.
func (d *Detector) Evaluate(testScores [][]float64) ([]Point, error) {
	out := make([]Point, 0, len(testScores))
	for t, row := range testScores {
		if len(row) != len(d.rels) {
			return nil, fmt.Errorf("anomaly: timestamp %d has %d scores, want %d", t, len(row), len(d.rels))
		}
		p := Point{T: t, Valid: len(d.rels)}
		for k, f := range row {
			if f < d.rels[k].TrainScore {
				p.Broken = append(p.Broken, Alert{
					Src: d.rels[k].Src, Tgt: d.rels[k].Tgt,
					TrainScore: d.rels[k].TrainScore, TestScore: f,
				})
			}
		}
		if p.Valid > 0 {
			p.Score = float64(len(p.Broken)) / float64(p.Valid)
		}
		out = append(out, p)
	}
	return out, nil
}

// Scores extracts the a_t series from detection points.
func Scores(points []Point) []float64 {
	out := make([]float64, len(points))
	for i, p := range points {
		out[i] = p.Score
	}
	return out
}

// Threshold flags the timestamps whose anomaly score is >= threshold.
func Threshold(points []Point, threshold float64) []int {
	var out []int
	for _, p := range points {
		if p.Score >= threshold {
			out = append(out, p.T)
		}
	}
	return out
}

// SharpIncrease reports the first timestamp whose anomaly score jumps by at
// least `jump` over the previous timestamp — the paper's disk-failure
// criterion ("a sharp increase (over 0.5 increment) right before the failure
// date", §IV-D2). It returns the index of the elevated point.
func SharpIncrease(scores []float64, jump float64) (int, bool) {
	for t := 1; t < len(scores); t++ {
		if scores[t]-scores[t-1] >= jump {
			return t, true
		}
	}
	return 0, false
}

// ClusterReport describes how strongly one community is implicated in an
// anomaly.
type ClusterReport struct {
	Members        []string
	BrokenEdges    int
	TotalEdges     int
	BrokenFraction float64
}

// Diagnosis is the fault-diagnosis output for one detected anomaly:
// communities of the local subgraph ranked by their share of broken
// relationships (paper Fig 9: "green circles indicate faulty clusters of
// sensors that are responsible for the anomalies").
type Diagnosis struct {
	Clusters []ClusterReport
	// Faulty lists the clusters whose broken fraction is >= 0.5, the ones
	// an operator would inspect first.
	Faulty []ClusterReport
}

// Diagnose attributes the broken relationships of one timestamp to the
// communities of a local subgraph. Edges whose endpoints span two
// communities count toward both (such bridge edges are "potentially
// responsible for error propagation", §II-B).
func Diagnose(local *graph.Graph, communities [][]string, broken []Alert) Diagnosis {
	commOf := make(map[string]int)
	for c, members := range communities {
		for _, m := range members {
			commOf[m] = c
		}
	}
	brokenSet := make(map[[2]string]struct{}, len(broken))
	for _, a := range broken {
		brokenSet[[2]string{a.Src, a.Tgt}] = struct{}{}
	}
	total := make([]int, len(communities))
	bad := make([]int, len(communities))
	seen := make(map[int]map[[2]string]struct{}, len(communities))
	mark := func(c int, e [2]string, isBroken bool) {
		if seen[c] == nil {
			seen[c] = make(map[[2]string]struct{})
		}
		if _, dup := seen[c][e]; dup {
			return
		}
		seen[c][e] = struct{}{}
		total[c]++
		if isBroken {
			bad[c]++
		}
	}
	for _, e := range local.Edges() {
		key := [2]string{e.Src, e.Tgt}
		_, isBroken := brokenSet[key]
		cs, okS := commOf[e.Src]
		ct, okT := commOf[e.Tgt]
		if okS {
			mark(cs, key, isBroken)
		}
		if okT && (!okS || ct != cs) {
			mark(ct, key, isBroken)
		}
	}
	var diag Diagnosis
	for c, members := range communities {
		rep := ClusterReport{
			Members:     append([]string(nil), members...),
			BrokenEdges: bad[c],
			TotalEdges:  total[c],
		}
		if total[c] > 0 {
			rep.BrokenFraction = float64(bad[c]) / float64(total[c])
		}
		diag.Clusters = append(diag.Clusters, rep)
	}
	sort.Slice(diag.Clusters, func(i, j int) bool {
		if diag.Clusters[i].BrokenFraction != diag.Clusters[j].BrokenFraction {
			return diag.Clusters[i].BrokenFraction > diag.Clusters[j].BrokenFraction
		}
		return len(diag.Clusters[i].Members) > len(diag.Clusters[j].Members)
	})
	for _, c := range diag.Clusters {
		if c.BrokenFraction >= 0.5 && c.TotalEdges > 0 {
			diag.Faulty = append(diag.Faulty, c)
		}
	}
	return diag
}
