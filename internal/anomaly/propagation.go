package anomaly

import "sort"

// PropagationStep summarises one time window of a fault-propagation trace:
// which sensors participated in broken relationships and how hard the system
// was failing during the window.
type PropagationStep struct {
	FromT, ToT int // [FromT, ToT) in detection-point timestamps
	// MeanScore is the mean anomaly score a_t over the window.
	MeanScore float64
	// PeakScore is the maximum a_t in the window.
	PeakScore float64
	// SensorHits counts, per sensor, how many broken relationships in the
	// window were incident to it.
	SensorHits map[string]int
	// Implicated lists the sensors ordered by descending hit count (ties
	// by name) — the propagation front at this window.
	Implicated []string
}

// Propagation slices a detection-point series into fixed-size windows and
// reports, per window, the sensors implicated in broken relationships — the
// paper's finer-granularity fault-propagation view (§III-C: "describe
// similar figures for each anomaly at finer granularities, e.g., every hour,
// to visually present how faults propagate through sensors over time").
// window <= 0 defaults to 1 (one step per window).
func Propagation(points []Point, window int) []PropagationStep {
	if window <= 0 {
		window = 1
	}
	var out []PropagationStep
	for start := 0; start < len(points); start += window {
		end := start + window
		if end > len(points) {
			end = len(points)
		}
		step := PropagationStep{
			FromT:      points[start].T,
			ToT:        points[end-1].T + 1,
			SensorHits: make(map[string]int),
		}
		var sum float64
		for _, p := range points[start:end] {
			sum += p.Score
			if p.Score > step.PeakScore {
				step.PeakScore = p.Score
			}
			for _, a := range p.Broken {
				step.SensorHits[a.Src]++
				step.SensorHits[a.Tgt]++
			}
		}
		step.MeanScore = sum / float64(end-start)
		step.Implicated = make([]string, 0, len(step.SensorHits))
		for s := range step.SensorHits {
			step.Implicated = append(step.Implicated, s)
		}
		sort.Slice(step.Implicated, func(i, j int) bool {
			a, b := step.Implicated[i], step.Implicated[j]
			if step.SensorHits[a] != step.SensorHits[b] {
				return step.SensorHits[a] > step.SensorHits[b]
			}
			return a < b
		})
		out = append(out, step)
	}
	return out
}

// NewlyImplicated compares consecutive propagation steps and returns, per
// step, the sensors that became implicated for the first time — the fault
// front's expansion over time.
func NewlyImplicated(trace []PropagationStep) [][]string {
	seen := make(map[string]struct{})
	out := make([][]string, len(trace))
	for i, step := range trace {
		for _, s := range step.Implicated {
			if _, ok := seen[s]; !ok {
				seen[s] = struct{}{}
				out[i] = append(out[i], s)
			}
		}
		sort.Strings(out[i])
	}
	return out
}
