package bleu_test

import (
	"fmt"

	"mdes/internal/bleu"
)

func ExampleSentence() {
	ref := []string{"the", "pump", "is", "on"}
	hyp := []string{"the", "pump", "is", "off"}
	score := bleu.Sentence(ref, hyp, 4, bleu.SmoothAddOne)
	fmt.Printf("BLEU = %.1f\n", score)
	perfect := bleu.Sentence(ref, ref, 4, bleu.SmoothNone)
	fmt.Printf("identical = %.0f\n", perfect)
	// Output:
	// BLEU = 59.5
	// identical = 100
}

func ExampleCorpus() {
	refs := [][]string{{"a", "b", "c"}, {"d", "e", "f"}}
	hyps := [][]string{{"a", "b", "c"}, {"d", "e", "x"}}
	fmt.Printf("%.1f\n", bleu.Corpus(refs, hyps, 2))
	// Output:
	// 79.1
}
