package bleu

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func toks(s string) []string { return strings.Fields(s) }

func TestPerfectTranslationScores100(t *testing.T) {
	ref := toks("a b c d e")
	if got := Sentence(ref, ref, 4, SmoothNone); math.Abs(got-100) > 1e-9 {
		t.Fatalf("identical sentence BLEU = %v, want 100", got)
	}
	if got := Corpus([][]string{ref, ref}, [][]string{ref, ref}, 4); math.Abs(got-100) > 1e-9 {
		t.Fatalf("identical corpus BLEU = %v, want 100", got)
	}
}

func TestCompletelyWrongScoresZero(t *testing.T) {
	ref := toks("a b c d")
	hyp := toks("x y z w")
	if got := Sentence(ref, hyp, 4, SmoothNone); got != 0 {
		t.Fatalf("disjoint BLEU = %v, want 0", got)
	}
	// Even with smoothing, unigram precision 0 keeps the score at 0.
	if got := Sentence(ref, hyp, 4, SmoothAddOne); got != 0 {
		t.Fatalf("disjoint smoothed BLEU = %v, want 0", got)
	}
}

func TestEmptyInputs(t *testing.T) {
	if got := Sentence(nil, toks("a"), 4, SmoothAddOne); got != 0 {
		t.Fatalf("empty ref BLEU = %v", got)
	}
	if got := Sentence(toks("a"), nil, 4, SmoothAddOne); got != 0 {
		t.Fatalf("empty hyp BLEU = %v", got)
	}
	if got := Corpus(nil, nil, 4); got != 0 {
		t.Fatalf("empty corpus BLEU = %v", got)
	}
	// Pairs with an empty side are skipped, not fatal.
	refs := [][]string{toks("a b"), nil}
	hyps := [][]string{toks("a b"), toks("x")}
	if got := Corpus(refs, hyps, 2); math.Abs(got-100) > 1e-9 {
		t.Fatalf("corpus with skipped pair = %v, want 100", got)
	}
}

func TestBrevityPenalty(t *testing.T) {
	ref := toks("a b c d e f g h")
	hyp := toks("a b c d") // perfect prefix, half length
	got := Sentence(ref, hyp, 1, SmoothNone)
	want := 100 * math.Exp(1-2.0) // p1 = 1, BP = e^{1-8/4}
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("BLEU = %v, want %v", got, want)
	}
	// A longer-than-reference hypothesis gets no brevity penalty but loses
	// precision instead.
	long := toks("a b c d e f g h x x")
	got = Sentence(ref, long, 1, SmoothNone)
	if math.Abs(got-80) > 1e-9 {
		t.Fatalf("long hyp BLEU = %v, want 80", got)
	}
}

func TestModifiedPrecisionClipping(t *testing.T) {
	// Classic example: hypothesis repeats a reference word; clipping caps
	// credit at the reference count.
	ref := toks("the cat is on the mat")
	hyp := toks("the the the the the the the")
	got := Sentence(ref, hyp, 1, SmoothNone)
	want := 100 * (2.0 / 7.0) // "the" appears twice in the reference
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("clipped BLEU = %v, want %v", got, want)
	}
}

func TestKnownPapineniExample(t *testing.T) {
	ref := toks("It is a guide to action that ensures that the military will forever heed Party commands")
	hyp := toks("It is a guide to action which ensures that the military always obeys the commands of the party")
	got := Sentence(ref, hyp, 4, SmoothNone)
	if got <= 0 || got >= 100 {
		t.Fatalf("plausible-translation BLEU = %v, want in (0,100)", got)
	}
	worse := toks("It is to insure the troops forever hearing the activity guidebook that party direct")
	gotWorse := Sentence(ref, worse, 4, SmoothAddOne)
	if gotWorse >= got {
		t.Fatalf("worse hypothesis scored %v >= better %v", gotWorse, got)
	}
}

func TestShortSentenceOrderExclusion(t *testing.T) {
	// A 2-token pair has no 3- or 4-grams; those orders must be excluded
	// rather than zeroing the score.
	ref := toks("a b")
	got := Sentence(ref, ref, 4, SmoothNone)
	if math.Abs(got-100) > 1e-9 {
		t.Fatalf("short identical BLEU = %v, want 100", got)
	}
}

func TestSmoothingModes(t *testing.T) {
	ref := toks("a b c d e")
	hyp := toks("a b x d e") // some 2-gram matches, maybe no 4-grams
	none := Sentence(ref, hyp, 4, SmoothNone)
	addOne := Sentence(ref, hyp, 4, SmoothAddOne)
	eps := Sentence(ref, hyp, 4, SmoothEpsilon)
	if none != 0 {
		t.Fatalf("unsmoothed with zero 4-gram precision = %v, want 0", none)
	}
	if addOne <= 0 || eps <= 0 {
		t.Fatalf("smoothed scores must be positive: addone=%v eps=%v", addOne, eps)
	}
	if eps >= addOne {
		t.Fatalf("epsilon smoothing (%v) should be harsher than add-one (%v)", eps, addOne)
	}
}

func TestCorpusPoolsCounts(t *testing.T) {
	// Corpus BLEU is not the mean of sentence BLEUs: counts pool first.
	refs := [][]string{toks("a b c d"), toks("w x y z")}
	hyps := [][]string{toks("a b c d"), toks("q q q q")}
	corpus := Corpus(refs, hyps, 1)
	if math.Abs(corpus-50) > 1e-9 {
		t.Fatalf("pooled unigram corpus BLEU = %v, want 50", corpus)
	}
}

func TestMaxNClamping(t *testing.T) {
	ref := toks("a b c")
	if got := Sentence(ref, ref, 0, SmoothNone); math.Abs(got-100) > 1e-9 {
		t.Fatalf("maxN=0 clamped BLEU = %v", got)
	}
	if got := Sentence(ref, ref, 99, SmoothNone); math.Abs(got-100) > 1e-9 {
		t.Fatalf("maxN=99 clamped BLEU = %v", got)
	}
}

func TestIDsWrappersMatchStringBLEU(t *testing.T) {
	refs := [][]int{{1, 2, 3, 4}, {5, 6, 7}}
	hyps := [][]int{{1, 2, 3, 4}, {5, 6, 8}}
	got := CorpusIDs(refs, hyps, 2)
	want := Corpus([][]string{{"1", "2", "3", "4"}, {"5", "6", "7"}},
		[][]string{{"1", "2", "3", "4"}, {"5", "6", "8"}}, 2)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("CorpusIDs = %v, Corpus = %v", got, want)
	}
	s := SentenceIDs([]int{1, 2}, []int{1, 2}, 2, SmoothAddOne)
	if math.Abs(s-100) > 1e-9 {
		t.Fatalf("SentenceIDs identical = %v", s)
	}
}

// Property: BLEU is always within [0, 100], and identity always scores 100.
func TestBLEUBoundsQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(refSeed, hypSeed uint8, refLen, hypLen uint8) bool {
		ref := randTokens(rng, int(refLen)%12+1, int(refSeed)%5+2)
		hyp := randTokens(rng, int(hypLen)%12+1, int(hypSeed)%5+2)
		for _, sm := range []Smoothing{SmoothNone, SmoothAddOne, SmoothEpsilon} {
			s := Sentence(ref, hyp, 4, sm)
			if s < 0 || s > 100 || math.IsNaN(s) {
				return false
			}
		}
		ident := Sentence(ref, ref, 4, SmoothNone)
		return math.Abs(ident-100) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func randTokens(rng *rand.Rand, n, alphabet int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = string(rune('a' + rng.Intn(alphabet)))
	}
	return out
}

func TestNgramKeySeparatorAvoidsCollisions(t *testing.T) {
	// Without a separator, bigrams ("ab","c") and ("a","bc") would collide.
	a := countNgrams([]string{"ab", "c"}, 2)
	b := countNgrams([]string{"a", "bc"}, 2)
	for k := range a {
		if _, ok := b[k]; ok {
			t.Fatalf("n-gram key collision on %q", k)
		}
	}
}
