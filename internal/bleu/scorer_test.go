package bleu

import (
	"math"
	"math/rand"
	"testing"
)

// TestScorerMatchesSentenceIDs pins bit-identical agreement between the
// alloc-free Scorer and the string-based reference on random sequences,
// including the negative sentinel tokens masked references use.
func TestScorerMatchesSentenceIDs(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	s := NewScorer()
	smoothings := []Smoothing{SmoothNone, SmoothAddOne, SmoothEpsilon}
	for trial := 0; trial < 500; trial++ {
		ref := randIntTokens(rng, rng.Intn(12))
		hyp := randIntTokens(rng, rng.Intn(12))
		maxN := rng.Intn(6) // exercises clamping on 0 and 5
		sm := smoothings[rng.Intn(len(smoothings))]
		want := SentenceIDs(ref, hyp, maxN, sm)
		got := s.SentenceIDs(ref, hyp, maxN, sm)
		if math.Float64bits(want) != math.Float64bits(got) {
			t.Fatalf("trial %d: Scorer %v != SentenceIDs %v (ref=%v hyp=%v maxN=%d sm=%d)",
				trial, got, want, ref, hyp, maxN, sm)
		}
	}
}

func randIntTokens(rng *rand.Rand, n int) []int {
	out := make([]int, n)
	for i := range out {
		// Small alphabet forces n-gram repeats; occasional negatives mimic
		// masked-unknown sentinels.
		out[i] = rng.Intn(6)
		if rng.Intn(8) == 0 {
			out[i] = -(rng.Intn(10) + 1)
		}
	}
	return out
}

func TestScorerIdenticalSentence(t *testing.T) {
	s := NewScorer()
	toks := []int{3, 4, 5, 6, 7, 8}
	if got := s.SentenceIDs(toks, toks, MaxOrder, SmoothAddOne); got != 100 {
		t.Fatalf("perfect match scored %v, want 100", got)
	}
	if got := s.SentenceIDs(nil, toks, MaxOrder, SmoothAddOne); got != 0 {
		t.Fatalf("empty ref scored %v", got)
	}
	if got := s.SentenceIDs(toks, nil, MaxOrder, SmoothAddOne); got != 0 {
		t.Fatalf("empty hyp scored %v", got)
	}
}

// TestScorerSteadyStateAllocs pins the property the batched scoring loop
// depends on: after warmup, scoring allocates nothing.
func TestScorerSteadyStateAllocs(t *testing.T) {
	s := NewScorer()
	ref := []int{3, 4, 5, 6, 3, 4, 7, 8}
	hyp := []int{3, 4, 5, 6, 3, 4}
	s.SentenceIDs(ref, hyp, MaxOrder, SmoothAddOne) // warm the maps
	allocs := testing.AllocsPerRun(200, func() {
		s.SentenceIDs(ref, hyp, MaxOrder, SmoothAddOne)
	})
	if allocs != 0 {
		t.Fatalf("Scorer.SentenceIDs allocates %v/op, want 0", allocs)
	}
}

func BenchmarkScorerSentence(b *testing.B) {
	s := NewScorer()
	ref := []int{3, 4, 5, 6, 3, 4, 7, 8}
	hyp := []int{3, 4, 5, 6, 3, 9}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SentenceIDs(ref, hyp, MaxOrder, SmoothAddOne)
	}
}

func BenchmarkSentenceIDsString(b *testing.B) {
	ref := []int{3, 4, 5, 6, 3, 4, 7, 8}
	hyp := []int{3, 4, 5, 6, 3, 9}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SentenceIDs(ref, hyp, MaxOrder, SmoothAddOne)
	}
}
