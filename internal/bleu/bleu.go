// Package bleu implements the BiLingual Evaluation Understudy score
// (Papineni et al. 2002), the metric the paper uses to quantify the strength
// of a pairwise sensor relationship. Scores are on the 0–100 scale. Both
// corpus-level BLEU (used for the training score s(i,j)) and smoothed
// sentence-level BLEU (used for the per-timestamp test score f(i,j)) are
// provided.
package bleu

import (
	"math"
	"strconv"
	"strings"
)

// MaxOrder is the conventional highest n-gram order.
const MaxOrder = 4

// Smoothing selects how zero n-gram precisions are handled for short or
// poor sentence-level hypotheses.
type Smoothing int

const (
	// SmoothNone leaves zero precisions alone; any zero drives the score
	// to 0 (the corpus-BLEU convention).
	SmoothNone Smoothing = iota + 1
	// SmoothAddOne adds one to numerator and denominator for orders > 1
	// (Lin & Och 2004, method 1 variant), the usual sentence-BLEU choice.
	SmoothAddOne
	// SmoothEpsilon substitutes a tiny constant for zero numerators.
	SmoothEpsilon
)

// Corpus returns corpus-level BLEU-N for aligned references and hypotheses,
// with n-gram counts pooled over all sentence pairs before computing the
// modified precisions. maxN is clamped to [1, MaxOrder]. Pairs where either
// side is empty are skipped; an effectively empty corpus scores 0.
func Corpus(refs, hyps [][]string, maxN int) float64 {
	maxN = clampOrder(maxN)
	matches := make([]float64, maxN)
	totals := make([]float64, maxN)
	var refLen, hypLen int
	n := len(refs)
	if len(hyps) < n {
		n = len(hyps)
	}
	for i := 0; i < n; i++ {
		ref, hyp := refs[i], hyps[i]
		if len(ref) == 0 || len(hyp) == 0 {
			continue
		}
		refLen += len(ref)
		hypLen += len(hyp)
		accumulate(ref, hyp, maxN, matches, totals)
	}
	if hypLen == 0 || refLen == 0 {
		return 0
	}
	return combine(matches, totals, refLen, hypLen, SmoothNone)
}

// Sentence returns smoothed sentence-level BLEU-N for one reference and one
// hypothesis.
func Sentence(ref, hyp []string, maxN int, smoothing Smoothing) float64 {
	if len(ref) == 0 || len(hyp) == 0 {
		return 0
	}
	maxN = clampOrder(maxN)
	matches := make([]float64, maxN)
	totals := make([]float64, maxN)
	accumulate(ref, hyp, maxN, matches, totals)
	return combine(matches, totals, len(ref), len(hyp), smoothing)
}

// CorpusIDs is Corpus over integer token sequences (convenience for NMT
// output).
func CorpusIDs(refs, hyps [][]int, maxN int) float64 {
	return Corpus(stringify(refs), stringify(hyps), maxN)
}

// SentenceIDs is Sentence over integer token sequences.
func SentenceIDs(ref, hyp []int, maxN int, smoothing Smoothing) float64 {
	return Sentence(stringifyOne(ref), stringifyOne(hyp), maxN, smoothing)
}

func clampOrder(maxN int) int {
	if maxN < 1 {
		return 1
	}
	if maxN > MaxOrder {
		return MaxOrder
	}
	return maxN
}

// accumulate adds one sentence pair's clipped n-gram matches and hypothesis
// n-gram totals for every order 1..maxN.
func accumulate(ref, hyp []string, maxN int, matches, totals []float64) {
	for n := 1; n <= maxN; n++ {
		hypGrams := countNgrams(hyp, n)
		if len(hypGrams) == 0 {
			continue
		}
		refGrams := countNgrams(ref, n)
		for g, c := range hypGrams {
			totals[n-1] += float64(c)
			if rc, ok := refGrams[g]; ok {
				if c < rc {
					matches[n-1] += float64(c)
				} else {
					matches[n-1] += float64(rc)
				}
			}
		}
	}
}

func combine(matches, totals []float64, refLen, hypLen int, smoothing Smoothing) float64 {
	var logSum float64
	var orders int
	for n := range matches {
		num, den := matches[n], totals[n]
		if den == 0 {
			// Hypothesis too short to contain this order at all:
			// exclude the order rather than zeroing the score.
			continue
		}
		if num == 0 {
			switch smoothing {
			case SmoothAddOne:
				if n > 0 { // never smooth unigrams
					num, den = num+1, den+1
				}
			case SmoothEpsilon:
				num = 1e-9
			}
		}
		if num == 0 {
			return 0
		}
		logSum += math.Log(num / den)
		orders++
	}
	if orders == 0 {
		return 0
	}
	precision := math.Exp(logSum / float64(orders))
	bp := 1.0
	if hypLen < refLen {
		bp = math.Exp(1 - float64(refLen)/float64(hypLen))
	}
	return 100 * bp * precision
}

// countNgrams returns n-gram counts keyed by a join of the tokens. The 0x1f
// unit separator cannot appear in sensor-language words, so keys are
// collision-free.
func countNgrams(tokens []string, n int) map[string]int {
	if len(tokens) < n {
		return nil
	}
	out := make(map[string]int, len(tokens)-n+1)
	var sb strings.Builder
	for i := 0; i+n <= len(tokens); i++ {
		sb.Reset()
		for j := 0; j < n; j++ {
			if j > 0 {
				sb.WriteByte(0x1f)
			}
			sb.WriteString(tokens[i+j])
		}
		out[sb.String()]++
	}
	return out
}

func stringify(seqs [][]int) [][]string {
	out := make([][]string, len(seqs))
	for i, s := range seqs {
		out[i] = stringifyOne(s)
	}
	return out
}

func stringifyOne(s []int) []string {
	out := make([]string, len(s))
	for i, v := range s {
		out[i] = strconv.Itoa(v)
	}
	return out
}
