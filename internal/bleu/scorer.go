package bleu

// Scorer computes smoothed sentence BLEU over integer token sequences with
// reusable scratch: the per-order n-gram count maps survive between calls
// (cleared, not reallocated), so steady-state scoring allocates nothing.
// This is the scorer the batched inference engine (internal/infer) runs per
// decoded sentence — at GEMM-batch throughput the per-call map and string
// garbage of SentenceIDs would dominate the profile.
//
// A Scorer is not safe for concurrent use; pool one per worker.
type Scorer struct {
	hyp map[ngramKey]int
	ref map[ngramKey]int
}

// ngramKey packs one n-gram (n ≤ MaxOrder) as a fixed-size array so map
// operations never allocate. Maps are per-order and cleared between orders,
// so padding positions beyond n cannot collide across orders; within an
// order all keys have the same shape. Token values are unrestricted ints —
// masked references use negative sentinels (see nmt.maskRefUnknowns) and
// they hash fine.
type ngramKey [MaxOrder]int

// NewScorer returns a Scorer with warm scratch maps.
func NewScorer() *Scorer {
	return &Scorer{
		hyp: make(map[ngramKey]int, 64),
		ref: make(map[ngramKey]int, 64),
	}
}

// SentenceIDs returns exactly what the package-level SentenceIDs returns for
// the same inputs (scorer_test.go pins the equivalence), without allocating.
//
//mdes:noalloc
func (s *Scorer) SentenceIDs(ref, hyp []int, maxN int, smoothing Smoothing) float64 {
	if len(ref) == 0 || len(hyp) == 0 {
		return 0
	}
	maxN = clampOrder(maxN)
	var matches, totals [MaxOrder]float64
	for n := 1; n <= maxN; n++ {
		if len(hyp) < n {
			continue
		}
		countInto(s.hyp, hyp, n)
		countInto(s.ref, ref, n)
		totals[n-1] = float64(len(hyp) - n + 1)
		for g, c := range s.hyp {
			rc := s.ref[g]
			if c < rc {
				rc = c
			}
			matches[n-1] += float64(rc)
		}
	}
	return combine(matches[:maxN], totals[:maxN], len(ref), len(hyp), smoothing)
}

// countInto clears m and counts the n-grams of tokens into it.
//
//mdes:noalloc
func countInto(m map[ngramKey]int, tokens []int, n int) {
	clear(m)
	var key ngramKey
	for i := 0; i+n <= len(tokens); i++ {
		for j := 0; j < n; j++ {
			key[j] = tokens[i+j]
		}
		m[key]++
	}
}
