package cluster

import (
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func replHandoff(tenant string, ticks int) Handoff {
	return Handoff{Tenant: tenant, Model: "m", Ticks: ticks, From: "http://self", Payload: json.RawMessage(`{}`)}
}

// TestReplQueueCoalescesNewestPerTenant: two offers for one tenant must ship
// once, with the newest record.
func TestReplQueueCoalescesNewestPerTenant(t *testing.T) {
	shipped := make(chan Handoff, 16)
	gate := make(chan struct{})
	q := &ReplQueue{Ship: func(ctx context.Context, peer string, h Handoff) error {
		<-gate
		shipped <- h
		return nil
	}}
	q.Start([]string{"http://self", "http://peer"}, "http://self")
	defer q.Stop()

	if !q.Offer("http://peer", replHandoff("a", 6)) {
		t.Fatal("first offer refused")
	}
	if !q.Offer("http://peer", replHandoff("a", 12)) {
		t.Fatal("coalescing offer refused")
	}
	close(gate)
	h := <-shipped
	if h.Ticks != 12 {
		t.Fatalf("shipped ticks = %d, want the coalesced 12", h.Ticks)
	}
	select {
	case extra := <-shipped:
		t.Fatalf("second ship %+v after coalescing", extra)
	case <-time.After(50 * time.Millisecond):
	}
	st := q.Stats()
	if st.Enqueued != 1 || st.Coalesced != 1 || st.Shipped != 1 {
		t.Fatalf("stats = %+v, want 1 enqueued / 1 coalesced / 1 shipped", st)
	}
}

// TestReplQueueStaleOfferDoesNotRegress: coalescing keeps the record with
// more ticks even when a stale one arrives second (reordered persists during
// an adoption race must not roll the standby back).
func TestReplQueueStaleOfferDoesNotRegress(t *testing.T) {
	shipped := make(chan Handoff, 16)
	gate := make(chan struct{})
	q := &ReplQueue{Ship: func(ctx context.Context, peer string, h Handoff) error {
		<-gate
		shipped <- h
		return nil
	}}
	q.Start([]string{"http://self", "http://peer"}, "http://self")
	defer q.Stop()

	q.Offer("http://peer", replHandoff("a", 12))
	q.Offer("http://peer", replHandoff("a", 6)) // stale duplicate
	close(gate)
	if h := <-shipped; h.Ticks != 12 {
		t.Fatalf("shipped ticks = %d, want 12 (stale 6 must not regress)", h.Ticks)
	}
}

// TestReplQueueDropsNotBlocks is the saturation contract: with the drainer
// wedged and the queue full, Offer must return immediately (dropping, not
// blocking) — it is called under session mutexes on the serve layer.
func TestReplQueueDropsNotBlocks(t *testing.T) {
	wedge := make(chan struct{})
	started := make(chan struct{}, 16)
	q := &ReplQueue{
		Cap: 2,
		Ship: func(ctx context.Context, peer string, h Handoff) error {
			started <- struct{}{}
			select {
			case <-wedge:
			case <-ctx.Done():
			}
			return ctx.Err()
		},
	}
	q.Start([]string{"http://self", "http://peer"}, "http://self")
	defer q.Stop()
	defer close(wedge)

	// Wedge the drainer inside a ship first, then fill the buffer behind it.
	q.Offer("http://peer", replHandoff("a", 1))
	<-started
	q.Offer("http://peer", replHandoff("b", 1))
	q.Offer("http://peer", replHandoff("c", 1))

	done := make(chan bool, 1)
	go func() { done <- q.Offer("http://peer", replHandoff("overflow", 1)) }()
	select {
	case accepted := <-done:
		if accepted {
			t.Fatal("offer accepted into a full queue")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Offer blocked on a saturated queue")
	}
	if st := q.Stats(); st.Dropped == 0 {
		t.Fatalf("stats = %+v, want dropped > 0", st)
	}

	// A tenant already queued must still coalesce while the queue is full.
	if !q.Offer("http://peer", replHandoff("c", 9)) {
		t.Fatal("coalescing offer refused on a full queue")
	}
}

// TestReplQueueUnknownPeerDropped: offers to peers outside the configured
// set (or to self) are counted drops, not panics or silent success.
func TestReplQueueUnknownPeerDropped(t *testing.T) {
	q := &ReplQueue{Ship: func(context.Context, string, Handoff) error { return nil }}
	q.Start([]string{"http://self", "http://peer"}, "http://self")
	defer q.Stop()
	if q.Offer("http://stranger", replHandoff("a", 1)) {
		t.Fatal("offer to unknown peer accepted")
	}
	if q.Offer("http://self", replHandoff("a", 1)) {
		t.Fatal("offer to self accepted")
	}
	if st := q.Stats(); st.Dropped != 2 {
		t.Fatalf("dropped = %d, want 2", st.Dropped)
	}
}

// TestReplQueueLagObserved: with an injected clock, shipping reports the
// enqueue→ack lag of each record.
func TestReplQueueLagObserved(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(0, 0)
	var lags []time.Duration
	gate := make(chan struct{})
	q := &ReplQueue{
		Ship: func(ctx context.Context, peer string, h Handoff) error { <-gate; return nil },
		Now: func() time.Time {
			mu.Lock()
			defer mu.Unlock()
			return now
		},
		OnLag: func(d time.Duration) {
			mu.Lock()
			lags = append(lags, d)
			mu.Unlock()
		},
	}
	q.Start([]string{"http://self", "http://peer"}, "http://self")
	defer q.Stop()

	q.Offer("http://peer", replHandoff("a", 6))
	mu.Lock()
	now = now.Add(250 * time.Millisecond)
	mu.Unlock()
	close(gate)

	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(lags)
		mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no lag observation arrived")
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if lags[0] != 250*time.Millisecond {
		t.Fatalf("lag = %s, want 250ms", lags[0])
	}
}

// TestRingSuccessorAmong: the standby is deterministic, distinct from the
// owner, respects eligibility, and is stable against unrelated peer loss.
func TestRingSuccessorAmong(t *testing.T) {
	peers := []string{"http://a", "http://b", "http://c", "http://d"}
	ring, err := NewRing(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, tenant := range []string{"plant-a", "plant-b", "plant-c", "tenant-007"} {
		owner := ring.Owner(tenant)
		standby := ring.SuccessorAmong(tenant, owner, nil)
		if standby == "" || standby == owner {
			t.Fatalf("tenant %q: standby %q (owner %q)", tenant, standby, owner)
		}
		// Deterministic: a second ring from the same peers agrees.
		ring2, _ := NewRing([]string{"http://d", "http://c", "http://b", "http://a"}, 0)
		if got := ring2.SuccessorAmong(tenant, owner, nil); got != standby {
			t.Fatalf("tenant %q: standby differs across ring builds: %q vs %q", tenant, got, standby)
		}
		// Losing a peer that is neither owner nor standby leaves the pair.
		surviving := func(p string) bool {
			for _, q := range peers {
				if q == p && p != pickOther(peers, owner, standby) {
					return true
				}
			}
			return false
		}
		if got := ring.SuccessorAmong(tenant, owner, surviving); got != standby {
			t.Fatalf("tenant %q: standby moved (%q→%q) when an unrelated peer left", tenant, standby, got)
		}
		// The standby itself failing moves the copy to the next survivor,
		// never back to the owner.
		if got := ring.SuccessorAmong(tenant, owner, func(p string) bool { return p != standby }); got == owner || got == standby || got == "" {
			t.Fatalf("tenant %q: standby-of-standby = %q", tenant, got)
		}
	}
	// Single eligible peer: nowhere to replicate.
	solo, _ := NewRing([]string{"http://a"}, 0)
	if got := solo.SuccessorAmong("t", "http://a", nil); got != "" {
		t.Fatalf("solo ring standby = %q, want none", got)
	}
}

// pickOther returns a peer that is neither a nor b.
func pickOther(peers []string, a, b string) string {
	for _, p := range peers {
		if p != a && p != b {
			return p
		}
	}
	return ""
}
