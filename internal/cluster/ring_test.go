package cluster

import (
	"fmt"
	"testing"
)

func testPeers(n int) []string {
	peers := make([]string, n)
	for i := range peers {
		peers[i] = fmt.Sprintf("http://replica-%d:9090", i)
	}
	return peers
}

func TestNewRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty peer list accepted")
	}
	if _, err := NewRing([]string{"http://a", ""}, 0); err == nil {
		t.Fatal("empty peer address accepted")
	}
	if _, err := NewRing([]string{"http://a", "http://a"}, 0); err == nil {
		t.Fatal("duplicate peer accepted")
	}
}

// The whole point of a static ring: every node derives identical placement,
// regardless of the order it was handed the peer list in.
func TestRingDeterministicAcrossPeerOrder(t *testing.T) {
	peers := testPeers(5)
	r1, err := NewRing(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	shuffled := []string{peers[3], peers[0], peers[4], peers[2], peers[1]}
	r2, err := NewRing(shuffled, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		tenant := fmt.Sprintf("tenant-%d", i)
		if o1, o2 := r1.Owner(tenant), r2.Owner(tenant); o1 != o2 {
			t.Fatalf("tenant %s: owner %s vs %s across peer orderings", tenant, o1, o2)
		}
	}
}

// Virtual nodes must spread tenants reasonably: with 3 peers and many
// tenants, no peer should own more than double its fair share.
func TestRingBalance(t *testing.T) {
	peers := testPeers(3)
	r, err := NewRing(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	const tenants = 3000
	counts := make(map[string]int)
	for i := 0; i < tenants; i++ {
		counts[r.Owner(fmt.Sprintf("tenant-%d", i))]++
	}
	fair := tenants / len(peers)
	for _, p := range peers {
		if counts[p] == 0 {
			t.Fatalf("peer %s owns no tenants", p)
		}
		if counts[p] > 2*fair {
			t.Fatalf("peer %s owns %d of %d tenants (fair share %d)", p, counts[p], tenants, fair)
		}
	}
}

// Fixed-width sequential names are the adversarial case for the hash:
// raw FNV-64a moves by a small multiple of its prime per trailing-digit
// step, so without the avalanche finalizer an entire zero-padded tenant
// population clusters into a sliver of the circle owned by one or two
// replicas (a three-replica smoke run really did place 200 of 200 tenants
// on two of them). The finalizer must keep this population spread.
func TestRingBalanceSequentialNames(t *testing.T) {
	peers := []string{"http://127.0.0.1:8341", "http://127.0.0.1:8342", "http://127.0.0.1:8343"}
	r, err := NewRing(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	const tenants = 200
	counts := make(map[string]int)
	for i := 0; i < tenants; i++ {
		counts[r.Owner(fmt.Sprintf("tenant-%03d", i))]++
	}
	fair := tenants / len(peers)
	for _, p := range peers {
		if counts[p] == 0 {
			t.Fatalf("peer %s owns no tenants: %v", p, counts)
		}
		if counts[p] > 2*fair {
			t.Fatalf("peer %s owns %d of %d tenants (fair share %d): %v", p, counts[p], tenants, fair, counts)
		}
	}
}

// Removing one peer must only move that peer's tenants; every other
// placement is untouched — the consistent-hash property migration relies
// on (only the drained node's sessions travel).
func TestRingMinimalMovementOnPeerLoss(t *testing.T) {
	peers := testPeers(4)
	r, err := NewRing(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	down := peers[2]
	eligible := func(p string) bool { return p != down }
	for i := 0; i < 1000; i++ {
		tenant := fmt.Sprintf("tenant-%d", i)
		before := r.Owner(tenant)
		after := r.OwnerAmong(tenant, eligible)
		if before != down && after != before {
			t.Fatalf("tenant %s moved %s -> %s though its owner stayed up", tenant, before, after)
		}
		if before == down && after == down {
			t.Fatalf("tenant %s still placed on the ineligible peer", tenant)
		}
	}
}

func TestRingOwnerAmongNoEligible(t *testing.T) {
	r, err := NewRing(testPeers(2), 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.OwnerAmong("t", func(string) bool { return false }); got != "" {
		t.Fatalf("owner among none = %q, want empty", got)
	}
}
