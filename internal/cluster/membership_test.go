package cluster

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestMembershipTransitions(t *testing.T) {
	peers := testPeers(3)
	m := NewMembership(peers)
	if got := m.AliveCount(); got != 3 {
		t.Fatalf("fresh membership alive = %d, want 3", got)
	}
	if !m.Eligible(peers[1]) {
		t.Fatal("fresh peer not eligible")
	}
	if !m.Set(peers[1], Leaving) {
		t.Fatal("Alive->Leaving not reported as a change")
	}
	if m.Set(peers[1], Leaving) {
		t.Fatal("no-op Set reported as a change")
	}
	if m.Eligible(peers[1]) {
		t.Fatal("leaving peer still eligible")
	}
	// A Down peer keeps ownership: unreachable is not dispossessed.
	m.Set(peers[2], Down)
	if !m.Eligible(peers[2]) {
		t.Fatal("down peer lost ownership")
	}
	if m.Set("http://stranger:1", Alive) {
		t.Fatal("unknown peer admitted to the static list")
	}
	if got := m.Get("http://stranger:1"); got != Gone {
		t.Fatalf("unknown peer state = %v, want Gone", got)
	}
	if got := m.Alive(); len(got) != 1 {
		t.Fatalf("alive list = %v, want 1 peer", got)
	}
}

// failFlip is a ProbeFunc whose verdict per peer can be flipped at runtime.
type failFlip struct {
	mu   sync.Mutex
	down map[string]bool
}

func (f *failFlip) probe(_ context.Context, peer string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.down[peer] {
		return errors.New("probe: connection refused")
	}
	return nil
}

func (f *failFlip) set(peer string, isDown bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.down[peer] = isDown
}

func TestProberDemotesToDownAndRecovers(t *testing.T) {
	peers := testPeers(2)
	self, other := peers[0], peers[1]
	mem := NewMembership(peers)
	flip := &failFlip{down: map[string]bool{other: true}}

	type change struct{ from, to PeerState }
	changes := make(chan change, 16)
	p := &Prober{
		Peers:         peers,
		Self:          self,
		Mem:           mem,
		Probe:         flip.probe,
		Interval:      2 * time.Millisecond,
		MaxInterval:   10 * time.Millisecond,
		FailThreshold: 2,
		OnChange: func(peer string, from, to PeerState) {
			if peer != other {
				t.Errorf("transition for unexpected peer %s", peer)
			}
			changes <- change{from, to}
		},
	}
	p.Start()
	defer p.Stop()

	waitChange := func(want change) {
		t.Helper()
		select {
		case got := <-changes:
			if got != want {
				t.Fatalf("transition %v -> %v, want %v -> %v", got.from, got.to, want.from, want.to)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("no %v -> %v transition", want.from, want.to)
		}
	}

	waitChange(change{Alive, Down})
	if got := mem.Get(other); got != Down {
		t.Fatalf("failed peer state = %v, want Down", got)
	}
	if !mem.Eligible(other) {
		t.Fatal("down peer lost ownership (its tenants' state is on its disk)")
	}
	flip.set(other, false)
	waitChange(change{Down, Alive})
	if got := mem.Get(other); got != Alive {
		t.Fatalf("recovered peer state = %v, want Alive", got)
	}
}

// A Gone (drained) peer must stay Gone under successful probes: its tenants
// moved away, so revival is announced by a hello, never inferred from a
// port answering.
func TestProberDoesNotReviveGonePeer(t *testing.T) {
	peers := testPeers(2)
	mem := NewMembership(peers)
	mem.Set(peers[1], Gone)
	p := &Prober{
		Peers:    peers,
		Self:     peers[0],
		Mem:      mem,
		Probe:    func(context.Context, string) error { return nil },
		Interval: time.Millisecond,
		OnChange: func(peer string, from, to PeerState) {
			t.Errorf("unexpected transition %v -> %v for %s", from, to, peer)
		},
	}
	p.Start()
	time.Sleep(20 * time.Millisecond)
	p.Stop()
	if got := mem.Get(peers[1]); got != Gone {
		t.Fatalf("gone peer state = %v, want Gone", got)
	}
}

// A draining peer whose process dies moves Leaving -> Gone so the table
// converges even when the leave announcement was the last thing it sent.
func TestProberCompletesLeaving(t *testing.T) {
	peers := testPeers(2)
	mem := NewMembership(peers)
	mem.Set(peers[1], Leaving)
	changes := make(chan PeerState, 4)
	p := &Prober{
		Peers:         peers,
		Self:          peers[0],
		Mem:           mem,
		Probe:         func(context.Context, string) error { return errors.New("refused") },
		Interval:      time.Millisecond,
		MaxInterval:   5 * time.Millisecond,
		FailThreshold: 2,
		OnChange:      func(_ string, _, to PeerState) { changes <- to },
	}
	p.Start()
	defer p.Stop()
	select {
	case to := <-changes:
		if to != Gone {
			t.Fatalf("transitioned to %v, want Gone", to)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("leaving peer never completed to Gone")
	}
}

// A peer that announced Leaving is draining deliberately; a successful
// probe must not promote it back to Alive and re-route tenants onto it.
func TestProberDoesNotReviveLeavingPeer(t *testing.T) {
	peers := testPeers(2)
	mem := NewMembership(peers)
	mem.Set(peers[1], Leaving)
	p := &Prober{
		Peers:    peers,
		Self:     peers[0],
		Mem:      mem,
		Probe:    func(context.Context, string) error { return nil },
		Interval: time.Millisecond,
		OnChange: func(peer string, from, to PeerState) {
			t.Errorf("unexpected transition %v -> %v for %s", from, to, peer)
		},
	}
	p.Start()
	time.Sleep(20 * time.Millisecond)
	p.Stop()
	if got := mem.Get(peers[1]); got != Leaving {
		t.Fatalf("leaving peer state = %v, want Leaving", got)
	}
}
