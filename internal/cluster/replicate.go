package cluster

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// ReplQueue is the asynchronous half of warm-standby replication: a bounded,
// coalescing, per-peer queue between the serve layer's snapshot-save path and
// the network. Its contract is shaped entirely by where it sits:
//
//   - Offer never blocks and performs no IO. It is called with the session
//     mutex held (right after a durable snapshot save), so anything slower
//     than a map update would put the network back under the tick path — the
//     exact failure mode the queue exists to prevent.
//   - Entries coalesce newest-per-tenant. A snapshot fully supersedes every
//     older snapshot of the same tenant, so a slow standby costs staleness
//     (bounded by the shipping rate), never unbounded memory.
//   - The queue is bounded per peer; when it is full, NEW tenants are
//     dropped (and counted), existing tenants still coalesce. Replication is
//     an availability optimisation over an already-durable local snapshot —
//     dropping a copy degrades the standby's freshness, blocking a tick
//     request would degrade the service itself.
//
// One drainer goroutine per peer pops entries in FIFO tenant order and hands
// them to Ship (the serve layer wires Sender.SendTo with ReplicatePath).
// Redelivery, duplication, and reordering are all absorbed by the receiver's
// ticks-idempotency, so the drainer retries nothing beyond what Ship itself
// retries — a failed ship is dropped and the next snapshot of that tenant
// re-offers naturally.
type ReplQueue struct {
	// Cap bounds the distinct tenants buffered per peer (default 256).
	Cap int
	// Ship delivers one snapshot record to a peer, outside every queue
	// lock. Required before Start.
	Ship func(ctx context.Context, peer string, h Handoff) error
	// Now stamps enqueue times so shipping can observe queue lag. Nil
	// disables lag tracking (this package must not read the wall clock
	// itself — detrand — so the caller injects it).
	Now func() time.Time
	// OnLag, if set, observes one shipped record's queue lag (enqueue to
	// acknowledged ship). Called outside every queue lock.
	OnLag func(d time.Duration)

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu    sync.Mutex
	peers map[string]*peerQueue

	enqueued  atomic.Int64
	coalesced atomic.Int64
	dropped   atomic.Int64
	shipped   atomic.Int64
	errors    atomic.Int64
}

// peerQueue is one peer's buffered snapshots: FIFO by first enqueue, newest
// record per tenant.
type peerQueue struct {
	peer string
	wake chan struct{} // 1-buffered doorbell

	mu    sync.Mutex
	order []string
	items map[string]replItem
}

type replItem struct {
	h      Handoff
	queued time.Time
}

func (q *ReplQueue) capPerPeer() int {
	if q.Cap > 0 {
		return q.Cap
	}
	return 256
}

// Start launches one drainer per remote peer. Call Stop to halt them.
func (q *ReplQueue) Start(peers []string, self string) {
	q.ctx, q.cancel = context.WithCancel(context.Background())
	q.mu.Lock()
	q.peers = make(map[string]*peerQueue, len(peers))
	for _, p := range peers {
		if p == self {
			continue
		}
		pq := &peerQueue{peer: p, wake: make(chan struct{}, 1), items: make(map[string]replItem)}
		q.peers[p] = pq
		q.wg.Add(1)
		go q.drain(q.ctx, pq)
	}
	q.mu.Unlock()
}

// Stop cancels in-flight ships and waits for the drainers to exit. Buffered
// entries are discarded — the local snapshots they mirror stay durable.
func (q *ReplQueue) Stop() {
	if q.cancel == nil {
		return
	}
	q.cancel()
	q.wg.Wait()
}

// Offer enqueues one snapshot for peer, coalescing onto any queued entry for
// the same tenant. It never blocks and performs no IO: a full queue drops
// the record (counted) rather than stalling the caller, who may be holding a
// session mutex. Returns false when the record was dropped or the peer is
// unknown.
func (q *ReplQueue) Offer(peer string, h Handoff) bool {
	q.mu.Lock()
	pq := q.peers[peer]
	q.mu.Unlock()
	if pq == nil {
		q.dropped.Add(1)
		return false
	}
	var queued time.Time
	if q.Now != nil {
		queued = q.Now()
	}
	pq.mu.Lock()
	if old, ok := pq.items[h.Tenant]; ok {
		// Coalesce: replace in place, keep the original FIFO slot and
		// enqueue stamp (lag measures how long the tenant waited, not how
		// fresh its newest record is).
		if h.Ticks >= old.h.Ticks {
			pq.items[h.Tenant] = replItem{h: h, queued: old.queued}
		}
		pq.mu.Unlock()
		q.coalesced.Add(1)
		return true
	}
	if len(pq.order) >= q.capPerPeer() {
		pq.mu.Unlock()
		q.dropped.Add(1)
		return false
	}
	pq.order = append(pq.order, h.Tenant)
	pq.items[h.Tenant] = replItem{h: h, queued: queued}
	pq.mu.Unlock()
	q.enqueued.Add(1)
	select {
	case pq.wake <- struct{}{}:
	default:
	}
	return true
}

// pop removes the oldest queued tenant.
func (pq *peerQueue) pop() (replItem, bool) {
	pq.mu.Lock()
	defer pq.mu.Unlock()
	if len(pq.order) == 0 {
		return replItem{}, false
	}
	tenant := pq.order[0]
	pq.order = pq.order[1:]
	item := pq.items[tenant]
	delete(pq.items, tenant)
	return item, true
}

// drain ships one peer's queue until the context ends. Ship runs outside
// every queue lock, so a slow peer stalls only its own drainer while Offer
// keeps coalescing fresh state behind it.
func (q *ReplQueue) drain(ctx context.Context, pq *peerQueue) {
	defer q.wg.Done()
	for {
		select {
		case <-ctx.Done():
			return
		case <-pq.wake:
		}
		for {
			item, ok := pq.pop()
			if !ok {
				break
			}
			if err := q.Ship(ctx, pq.peer, item.h); err != nil {
				q.errors.Add(1)
			} else {
				q.shipped.Add(1)
				if q.OnLag != nil && q.Now != nil && !item.queued.IsZero() {
					q.OnLag(q.Now().Sub(item.queued))
				}
			}
			if ctx.Err() != nil {
				return
			}
		}
	}
}

// Depth reports how many records are currently buffered across all peers.
func (q *ReplQueue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	for _, pq := range q.peers {
		pq.mu.Lock()
		n += len(pq.order)
		pq.mu.Unlock()
	}
	return n
}

// ReplStats is a snapshot of the queue's counters.
type ReplStats struct {
	Enqueued  int64 // records accepted as new queue entries
	Coalesced int64 // records folded onto an already-queued tenant
	Dropped   int64 // records refused because the peer queue was full
	Shipped   int64 // records delivered and acknowledged
	Errors    int64 // ships that exhausted their retries
}

// Stats returns the queue's counters.
func (q *ReplQueue) Stats() ReplStats {
	return ReplStats{
		Enqueued:  q.enqueued.Load(),
		Coalesced: q.coalesced.Load(),
		Dropped:   q.dropped.Load(),
		Shipped:   q.shipped.Load(),
		Errors:    q.errors.Load(),
	}
}
