package cluster

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// stepClock replaces the prober's wait with a counted release valve: the test
// admits probe rounds one at a time, so every assertion below is about an
// exact number of probes, not about timers racing a wall clock.
type stepClock struct {
	mu     sync.Mutex
	waits  []time.Duration
	admit  chan struct{}
	closed chan struct{}
}

func newStepClock() *stepClock {
	return &stepClock{admit: make(chan struct{}, 64), closed: make(chan struct{})}
}

func (c *stepClock) sleep(d time.Duration) {
	c.mu.Lock()
	c.waits = append(c.waits, d)
	c.mu.Unlock()
	select {
	case <-c.admit:
	case <-c.closed:
	}
}

// step admits n probe rounds.
func (c *stepClock) step(n int) {
	for i := 0; i < n; i++ {
		c.admit <- struct{}{}
	}
}

func (c *stepClock) recorded() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]time.Duration(nil), c.waits...)
}

// stepProber wires a prober against a single remote peer with the stepped
// clock and an OnChange recorder.
func stepProber(t *testing.T, flip *failFlip) (*Prober, *Membership, *stepClock, chan [2]PeerState) {
	t.Helper()
	peers := testPeers(2)
	mem := NewMembership(peers)
	clock := newStepClock()
	changes := make(chan [2]PeerState, 64)
	p := &Prober{
		Peers:         peers,
		Self:          peers[0],
		Mem:           mem,
		Probe:         flip.probe,
		Interval:      100 * time.Millisecond,
		MaxInterval:   800 * time.Millisecond,
		FailThreshold: 2,
		Seed:          42,
		Sleep:         clock.sleep,
		OnChange:      func(_ string, from, to PeerState) { changes <- [2]PeerState{from, to} },
	}
	p.Start()
	t.Cleanup(func() {
		close(clock.closed)
		p.Stop()
	})
	return p, mem, clock, changes
}

func waitState(t *testing.T, mem *Membership, peer string, want PeerState) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for mem.Get(peer) != want {
		if time.Now().After(deadline) {
			t.Fatalf("peer %s state = %v, want %v", peer, mem.Get(peer), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestProberDownToAliveOnSingleSuccess: demotion needs FailThreshold strikes;
// recovery needs exactly one.
func TestProberDownToAliveOnSingleSuccess(t *testing.T) {
	peer := testPeers(2)[1]
	flip := &failFlip{down: map[string]bool{peer: true}}
	_, mem, clock, changes := stepProber(t, flip)

	// One failed probe: below threshold, still Alive.
	clock.step(1)
	select {
	case ch := <-changes:
		t.Fatalf("transition %v after one strike (threshold 2)", ch)
	case <-time.After(50 * time.Millisecond):
	}
	// Second strike demotes.
	clock.step(1)
	waitState(t, mem, peer, Down)
	if ch := <-changes; ch != [2]PeerState{Alive, Down} {
		t.Fatalf("transition %v, want Alive→Down", ch)
	}

	// One success revives — no threshold on the way up.
	flip.set(peer, false)
	clock.step(1)
	waitState(t, mem, peer, Alive)
	if ch := <-changes; ch != [2]PeerState{Down, Alive} {
		t.Fatalf("transition %v, want Down→Alive", ch)
	}
}

// TestProberGoneStaysGoneUnderPassingProbes: Gone requires an announced
// revival; green health checks alone must not resurrect a drained peer.
func TestProberGoneStaysGoneUnderPassingProbes(t *testing.T) {
	peer := testPeers(2)[1]
	flip := &failFlip{down: map[string]bool{}}
	_, mem, clock, changes := stepProber(t, flip)

	mem.Set(peer, Gone)
	clock.step(5)
	select {
	case ch := <-changes:
		t.Fatalf("transition %v for a Gone peer with passing probes", ch)
	case <-time.After(100 * time.Millisecond):
	}
	if got := mem.Get(peer); got != Gone {
		t.Fatalf("state = %v, want Gone to stick", got)
	}
}

// TestProberBackoffGrowsAndResets: consecutive failures double the wait up to
// MaxInterval; one success snaps it back to Interval. The stepped clock
// records every requested wait, so the whole schedule is assertable.
func TestProberBackoffGrowsAndResets(t *testing.T) {
	peer := testPeers(2)[1]
	flip := &failFlip{down: map[string]bool{peer: true}}
	_, mem, clock, _ := stepProber(t, flip)

	clock.step(5) // five failures: waits requested after them are 200,400,800,800,800ms nominal
	waitState(t, mem, peer, Down)
	flip.set(peer, false)
	clock.step(1) // success: next wait back to 100ms nominal
	waitState(t, mem, peer, Alive)
	clock.step(1) // force the post-success wait to be recorded

	deadline := time.Now().Add(2 * time.Second)
	var waits []time.Duration
	for len(waits) < 7 {
		if time.Now().After(deadline) {
			t.Fatalf("recorded %d waits, want 7: %v", len(waits), waits)
		}
		waits = clock.recorded()
		time.Sleep(time.Millisecond)
	}
	nominal := []time.Duration{
		100 * time.Millisecond, // initial
		200 * time.Millisecond, // after fail 1
		400 * time.Millisecond, // fail 2
		800 * time.Millisecond, // fail 3 (capped)
		800 * time.Millisecond, // fail 4
		800 * time.Millisecond, // fail 5
		100 * time.Millisecond, // reset after success
	}
	for i, want := range nominal {
		lo := time.Duration(float64(want) * 0.8)
		hi := time.Duration(float64(want) * 1.2)
		if waits[i] < lo || waits[i] > hi {
			t.Fatalf("wait[%d] = %s, want within ±20%% of %s (all: %v)", i, waits[i], want, waits)
		}
	}
}

// TestProberJitterIsSeededAndSpread: the jitter stream is deterministic for a
// given (seed, peer) and actually varies — same seed twice gives the same
// schedule, and the schedule is not a constant.
func TestProberJitterIsSeededAndSpread(t *testing.T) {
	sample := func() []time.Duration {
		rng := rand.New(rand.NewSource(int64(7) ^ int64(hashKey("http://peer:1"))))
		out := make([]time.Duration, 8)
		for i := range out {
			out[i] = jittered(rng, time.Second)
		}
		return out
	}
	a, b := sample(), sample()
	distinct := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("jitter not deterministic: run1[%d]=%s run2[%d]=%s", i, a[i], i, b[i])
		}
		if a[i] < 800*time.Millisecond || a[i] > 1200*time.Millisecond {
			t.Fatalf("jittered wait %s outside ±20%% of 1s", a[i])
		}
		if i > 0 && a[i] != a[i-1] {
			distinct = true
		}
	}
	if !distinct {
		t.Fatal("jitter produced a constant schedule")
	}
}

// TestProberTimeoutDecoupledFromBackoff: a peer deep in backoff still gets a
// short probe context — the probe deadline tracks probeTimeout, not the
// (possibly 30s) wait interval.
func TestProberTimeoutDecoupledFromBackoff(t *testing.T) {
	p := &Prober{Interval: 10 * time.Second}
	if got := p.probeTimeout(); got != time.Second {
		t.Fatalf("default probe timeout = %s, want 1s cap", got)
	}
	p = &Prober{Interval: 200 * time.Millisecond}
	if got := p.probeTimeout(); got != 200*time.Millisecond {
		t.Fatalf("probe timeout = %s, want the sub-second interval", got)
	}
	p = &Prober{Interval: 10 * time.Second, ProbeTimeout: 3 * time.Second}
	if got := p.probeTimeout(); got != 3*time.Second {
		t.Fatalf("probe timeout = %s, want the explicit 3s", got)
	}

	// And the context handed to the probe actually carries that deadline.
	got := make(chan time.Duration, 1)
	peer := testPeers(2)[1]
	clock := newStepClock()
	pr := &Prober{
		Peers:    testPeers(2),
		Self:     testPeers(2)[0],
		Mem:      NewMembership(testPeers(2)),
		Interval: 5 * time.Second,
		Sleep:    clock.sleep,
		Probe: func(ctx context.Context, _ string) error {
			if dl, ok := ctx.Deadline(); ok {
				got <- time.Until(dl)
			} else {
				got <- -1
			}
			return errors.New("probe: down")
		},
	}
	pr.Start()
	defer func() {
		close(clock.closed)
		pr.Stop()
	}()
	clock.step(1)
	select {
	case d := <-got:
		if d <= 0 || d > time.Second {
			t.Fatalf("probe context deadline %s away, want (0, 1s]", d)
		}
	case <-time.After(2 * time.Second):
		t.Fatalf("probe never ran (peer %s)", peer)
	}
}
