// Package cluster is the horizontal-scaling substrate for mdes-serve: a
// consistent-hash ring that assigns every tenant to exactly one replica, a
// peer-membership table with health probing, and a snapshot-handoff protocol
// that moves a tenant's frozen session between replicas without losing a
// tick.
//
// The design is deliberately coordination-free: the replica set is a static
// `-peers` list, every node (and every routing client) derives the same ring
// from it, and the only cluster state that ever changes is each node's local
// view of which peers are alive. Ownership is therefore a pure function of
// (tenant, ring, alive set); disagreement between views is resolved by
// redirects (a non-owner answers 307 + the owner's address) and bounded by
// the handoff protocol's idempotency (receivers keep the state with the most
// ticks, so a replayed or crossed handoff is a no-op).
package cluster

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVnodes is the virtual-node count per peer. Servers and routing
// clients must agree on it (both default here) or clients would guess wrong
// owners and pay a redirect on every request.
const DefaultVnodes = 64

// Ring is an immutable consistent-hash ring over a peer list. Two rings
// built from the same peers and vnode count place every tenant identically,
// on every machine — that determinism is what lets each replica and each
// client route independently without a coordinator.
type Ring struct {
	peers  []string // sorted, unique
	points []point  // sorted by hash; ties broken by peer then index
}

// point is one virtual node: a position on the hash circle owned by a peer.
type point struct {
	hash uint64
	peer string
}

// NewRing builds a ring with vnodes virtual nodes per peer (0 selects
// DefaultVnodes). Peers are base addresses ("http://host:port"); duplicates
// and empties are rejected so every node derives the identical ring.
func NewRing(peers []string, vnodes int) (*Ring, error) {
	if len(peers) == 0 {
		return nil, errors.New("cluster: no peers")
	}
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	sorted := append([]string(nil), peers...)
	sort.Strings(sorted)
	for i, p := range sorted {
		if p == "" {
			return nil, errors.New("cluster: empty peer address")
		}
		if i > 0 && sorted[i-1] == p {
			return nil, fmt.Errorf("cluster: duplicate peer %q", p)
		}
	}
	r := &Ring{peers: sorted, points: make([]point, 0, len(sorted)*vnodes)}
	for _, p := range sorted {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: hashKey(p + "#" + strconv.Itoa(v)), peer: p})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A 64-bit collision is vanishingly rare but must still order the
		// same way everywhere.
		return r.points[i].peer < r.points[j].peer
	})
	return r, nil
}

// hashKey is FNV-64a run through a 64-bit avalanche finalizer (murmur3's
// fmix64). Both halves matter: FNV is stable across processes and
// architectures, which is the property placement needs — but raw FNV barely
// diffuses trailing bytes (hashes of "tenant-001"…"tenant-199" differ by
// small multiples of the FNV prime, clustering a whole sequential tenant
// population into a sliver of the circle that one or two replicas own).
// The finalizer spreads those clustered sums uniformly while staying just
// as deterministic.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s)) // hash.Hash.Write never fails
	z := h.Sum64()
	z ^= z >> 33
	z *= 0xff51afd7ed558ccd
	z ^= z >> 33
	z *= 0xc4ceb9fe1a85ec53
	z ^= z >> 33
	return z
}

// Peers returns the ring's peer list in sorted order. Callers must not
// mutate it.
func (r *Ring) Peers() []string { return r.peers }

// Owner returns the tenant's owner with every peer eligible.
func (r *Ring) Owner(tenant string) string { return r.OwnerAmong(tenant, nil) }

// OwnerAmong returns the first peer at or clockwise of the tenant's hash
// that passes eligible (nil admits every peer) — the consistent-hash
// property: removing one peer reassigns only that peer's tenants, to their
// next point on the circle, and every other placement is untouched. Returns
// "" when no peer is eligible.
func (r *Ring) OwnerAmong(tenant string, eligible func(peer string) bool) string {
	h := hashKey(tenant)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if eligible == nil || eligible(p.peer) {
			return p.peer
		}
	}
	return ""
}

// SuccessorAmong returns the tenant's standby: the first eligible peer,
// walking clockwise from the tenant's hash, that is distinct from owner.
// It inherits OwnerAmong's stability property — losing any peer other than
// the owner or the standby leaves the (owner, standby) pair untouched — and,
// like OwnerAmong, every replica and client derives the same answer from the
// same view. Returns "" when no distinct eligible peer exists (e.g. a
// single-replica "cluster", which has nowhere to replicate to).
func (r *Ring) SuccessorAmong(tenant, owner string, eligible func(peer string) bool) string {
	h := hashKey(tenant)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if p.peer == owner {
			continue
		}
		if eligible == nil || eligible(p.peer) {
			return p.peer
		}
	}
	return ""
}
