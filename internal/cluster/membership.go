package cluster

import (
	"fmt"
	"sort"
	"sync"
)

// PeerState is a node's local view of one peer. Views are not replicated:
// each node probes independently and routes by its own table, and any
// disagreement is absorbed by redirects and idempotent handoffs.
//
// The states split along two axes — reachability and ownership. A peer
// that is merely unreachable (Down) KEEPS its tenants: their state lives
// on its disk, and letting a survivor adopt them would fresh-start
// divergent streams. Only an announced drain (Leaving → Gone), which
// ships every session out first, moves ownership.
type PeerState int

const (
	// Alive: the peer is serving and owns its ring range.
	Alive PeerState = iota
	// Down: probes fail but the peer never announced a drain — a crash or
	// a partition. It still owns its ring range; requests for its tenants
	// are answered 503 (retry when it returns), never adopted.
	Down
	// Leaving: the peer announced a drain and is shipping its sessions
	// out. No longer an owner; its tenants rehash onto the survivors.
	Leaving
	// Gone: the peer departed after a drain. Not an owner. Revival is
	// announced, not probed: a restarted peer says hello, which is what
	// flips it back to Alive and triggers shipping its tenants home.
	Gone
)

func (s PeerState) String() string {
	switch s {
	case Alive:
		return "alive"
	case Down:
		return "down"
	case Leaving:
		return "leaving"
	case Gone:
		return "gone"
	default:
		return fmt.Sprintf("PeerState(%d)", int(s))
	}
}

// owner reports whether the state retains ring ownership.
func (s PeerState) owner() bool { return s == Alive || s == Down }

// Membership is one node's mutable availability table over the static peer
// list. All peers start Alive: a fresh cluster must route without waiting
// for a probe round, and a wrong optimistic guess only costs a redirect or
// a retried handoff.
type Membership struct {
	mu     sync.Mutex
	states map[string]PeerState
}

// NewMembership builds a table over peers, all Alive.
func NewMembership(peers []string) *Membership {
	m := &Membership{states: make(map[string]PeerState, len(peers))}
	for _, p := range peers {
		m.states[p] = Alive
	}
	return m
}

// Get returns the peer's state; an unknown peer reads as Gone.
func (m *Membership) Get(peer string) PeerState {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.states[peer]
	if !ok {
		return Gone
	}
	return s
}

// Set records a state change and reports whether it was a change. Unknown
// peers are ignored (the peer list is static; nothing can join it at
// runtime).
func (m *Membership) Set(peer string, s PeerState) (changed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	old, ok := m.states[peer]
	if !ok || old == s {
		return false
	}
	m.states[peer] = s
	return true
}

// Eligible reports whether peer currently owns its ring range: Alive and
// Down peers do (Down is unreachable, not dispossessed — see PeerState);
// Leaving and Gone peers have shipped or are shipping their tenants away.
// The method is a ready-made `eligible` for Ring.OwnerAmong, but OwnerAmong
// calls it point by point — callers on a hot path should route through a
// Snapshot instead of paying a lock per virtual node.
func (m *Membership) Eligible(peer string) bool { return m.Get(peer).owner() }

// AliveCount returns how many peers are currently Alive.
func (m *Membership) AliveCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, s := range m.states {
		if s == Alive {
			n++
		}
	}
	return n
}

// Snapshot returns a copy of the table for lock-free iteration.
func (m *Membership) Snapshot() map[string]PeerState {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]PeerState, len(m.states))
	for p, s := range m.states {
		out[p] = s
	}
	return out
}

// Alive returns the Alive peers, sorted.
func (m *Membership) Alive() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for p, s := range m.states {
		if s == Alive {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}
