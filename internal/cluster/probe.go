package cluster

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// ProbeFunc checks one peer's health; nil means healthy. The cluster node
// injects an HTTP GET of the peer's /healthz; tests inject whatever they
// like. Probes run OUTSIDE every cluster lock — lockcall enforces that no
// network IO can hide under the membership mutex.
type ProbeFunc func(ctx context.Context, peer string) error

// Prober periodically health-checks every peer except self and maintains
// the reachability half of the Membership table:
//
//   - Alive → Down after FailThreshold consecutive failures (crash or
//     partition; ownership is retained — see PeerState).
//   - Down → Alive on one success (the peer came back; nothing moved, so
//     nothing ships).
//   - Leaving → Gone on failure (the drain completed and the peer exited).
//
// Gone is sticky under probing: a drained peer's tenants moved away, so
// its revival must be announced (a hello that triggers shipping them
// home), not inferred from a port answering — a drainer still answering
// health checks mid-drain must not be yanked back to Alive. A failing
// peer's probes back off exponentially so a long outage costs one cheap
// refused dial per MaxInterval rather than a tight reconnect loop.
//
// Every wait is jittered ±20% by a per-peer seeded rng: N replicas probing
// a recovering peer would otherwise converge on the same cadence and hit it
// simultaneously every round (a probe storm at exactly the moment the peer
// is least able to absorb one). The seed is explicit and per-peer so the
// schedule stays deterministic under test (detrand forbids the global
// source here for the same reason it does in scoring code).
type Prober struct {
	Peers    []string
	Self     string
	Mem      *Membership
	Probe    ProbeFunc
	Interval time.Duration // base probe period (default 2s)
	// MaxInterval caps the per-peer backoff (default 30s).
	MaxInterval time.Duration
	// ProbeTimeout bounds one probe's context independently of the (possibly
	// backed-off) wait interval: a peer 30s into its backoff should still
	// fail a dead dial in about a second, not keep a connection attempt
	// pinned for the whole 30s. 0 selects min(Interval, 1s).
	ProbeTimeout time.Duration
	// Seed derives each peer's jitter stream (mixed with the peer's own
	// hash, so two loops never share a schedule). Zero is a valid seed.
	Seed int64
	// FailThreshold is how many consecutive failures demote Alive→Gone
	// (default 2 — one blip should not trigger a rebalance).
	FailThreshold int
	// OnChange, if set, is called after a state transition, outside all
	// locks: the serve layer hooks the rebalance sweep here (Gone→Alive
	// means the revived peer's tenants must be shipped back to it).
	OnChange func(peer string, from, to PeerState)
	// Sleep replaces the inter-probe wait in tests: it receives the
	// jittered delay and returns once the wait would have elapsed. Nil
	// selects a real timer. Stop still interrupts the loop between waits.
	Sleep func(d time.Duration)

	stop chan struct{}
	done sync.WaitGroup
	once sync.Once
}

func (p *Prober) interval() time.Duration {
	if p.Interval > 0 {
		return p.Interval
	}
	return 2 * time.Second
}

func (p *Prober) maxInterval() time.Duration {
	if p.MaxInterval > 0 {
		return p.MaxInterval
	}
	return 30 * time.Second
}

// probeTimeout returns the per-probe context budget: explicit when set,
// otherwise the base interval capped at one second.
func (p *Prober) probeTimeout() time.Duration {
	if p.ProbeTimeout > 0 {
		return p.ProbeTimeout
	}
	if iv := p.interval(); iv < time.Second {
		return iv
	}
	return time.Second
}

func (p *Prober) failThreshold() int {
	if p.FailThreshold > 0 {
		return p.FailThreshold
	}
	return 2
}

// Start launches one probe loop per remote peer. Call Stop to halt them.
func (p *Prober) Start() {
	p.stop = make(chan struct{})
	for _, peer := range p.Peers {
		if peer == p.Self {
			continue
		}
		p.done.Add(1)
		go p.loop(peer)
	}
}

// Stop halts the probe loops and waits for them to exit. Safe to call more
// than once; a Prober that was never Started is a no-op.
func (p *Prober) Stop() {
	if p.stop == nil {
		return
	}
	p.once.Do(func() { close(p.stop) })
	p.done.Wait()
}

// jittered spreads a wait across ±20% of its nominal value.
func jittered(rng *rand.Rand, d time.Duration) time.Duration {
	return time.Duration(float64(d) * (0.8 + 0.4*rng.Float64()))
}

// wait blocks for the jittered delay or until Stop; false means stop.
func (p *Prober) wait(d time.Duration) bool {
	if p.Sleep != nil {
		p.Sleep(d)
		select {
		case <-p.stop:
			return false
		default:
			return true
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-p.stop:
		return false
	case <-t.C:
		return true
	}
}

// loop probes one peer forever. Healthy peers are probed every ~Interval
// (jittered); each consecutive failure doubles the wait up to MaxInterval,
// and a success resets it. The probe context is bounded by probeTimeout, not
// by the wait — a backed-off peer still fails fast.
func (p *Prober) loop(peer string) {
	defer p.done.Done()
	rng := rand.New(rand.NewSource(p.Seed ^ int64(hashKey(peer))))
	fails := 0
	wait := p.interval()
	for {
		if !p.wait(jittered(rng, wait)) {
			return
		}
		ctx, cancel := context.WithTimeout(context.Background(), p.probeTimeout())
		err := p.Probe(ctx, peer)
		cancel()
		if err == nil {
			fails = 0
			wait = p.interval()
			p.transition(peer, Down, Alive)
		} else {
			fails++
			if wait *= 2; wait > p.maxInterval() {
				wait = p.maxInterval()
			}
			if fails >= p.failThreshold() {
				p.transition(peer, Alive, Down)
				p.transition(peer, Leaving, Gone)
			}
		}
	}
}

// transition applies from→to if the peer is currently in from, then fires
// OnChange outside the membership lock.
func (p *Prober) transition(peer string, from, to PeerState) {
	if p.Mem.Get(peer) != from {
		return
	}
	if p.Mem.Set(peer, to) && p.OnChange != nil {
		p.OnChange(peer, from, to)
	}
}
