package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"mdes/internal/checkpoint"
)

// Internal cluster endpoints, mounted by the serve layer on every replica.
const (
	// HandoffPath receives one tenant's frozen session snapshot.
	HandoffPath = "/v1/cluster/handoff"
	// UpdatePath receives peer announcements (hello on join, leave on
	// drain) that adjust the receiver's membership view.
	UpdatePath = "/v1/cluster/update"
	// ReplicatePath receives one tenant's warm-standby snapshot copy. Same
	// frame format and idempotency key as HandoffPath, but the receiver
	// persists the record in its standby store instead of installing a live
	// session — ownership does not move with a replica.
	ReplicatePath = "/v1/cluster/replicate"
)

// Handoff is one tenant migration: the opaque session snapshot plus enough
// metadata for the receiver to order it. Payload is whatever the serve
// layer serializes (cluster stays ignorant of session internals — the serve
// package imports cluster, never the reverse); Ticks is the snapshot's
// stream position and is the idempotency key: a receiver that already holds
// state at >= Ticks treats the handoff as a duplicate and answers 200
// without touching anything, which is what makes retries and crossed
// deliveries safe.
type Handoff struct {
	Tenant  string          `json:"tenant"`
	Model   string          `json:"model"`
	Ticks   int             `json:"ticks"`
	From    string          `json:"from"`
	Payload json.RawMessage `json:"payload"`
}

// EncodeHandoff wraps the handoff in the checkpoint frame format
// (length + CRC-32 + payload), reusing the crash-proven framing so a
// truncated or corrupted body is detected before any state changes.
func EncodeHandoff(h Handoff) ([]byte, error) {
	payload, err := json.Marshal(h)
	if err != nil {
		return nil, fmt.Errorf("cluster: encode handoff %s: %w", h.Tenant, err)
	}
	return checkpoint.AppendFrame(nil, payload), nil
}

// ErrBadFrame reports a handoff body whose frame is short or fails its CRC.
var ErrBadFrame = errors.New("cluster: handoff frame truncated or corrupt")

// DecodeHandoff validates the frame and decodes the handoff. Exactly one
// frame must be present and intact.
func DecodeHandoff(data []byte) (Handoff, error) {
	payloads, valid, _ := checkpoint.Frames(data)
	if len(payloads) != 1 || valid != len(data) {
		return Handoff{}, ErrBadFrame
	}
	var h Handoff
	if err := json.Unmarshal(payloads[0], &h); err != nil {
		return Handoff{}, fmt.Errorf("cluster: decode handoff: %w", err)
	}
	if h.Tenant == "" {
		return Handoff{}, errors.New("cluster: handoff without tenant")
	}
	return h, nil
}

// PeerUpdate is a peer announcement POSTed to UpdatePath.
//
//   - Kind "hello": the sender just (re)joined. The receiver marks it
//     Alive and replies with the tenants it currently holds that the
//     sender now owns, so the sender can block them as pending until the
//     receiver ships them over.
//   - Kind "leave": the sender is draining. The receiver marks it Gone and
//     records Tenants — the sessions the sender is about to ship to this
//     receiver — as pending, so a tick that races ahead of its handoff
//     waits (503) instead of fresh-starting a divergent stream.
type PeerUpdate struct {
	Kind    string   `json:"kind"`
	From    string   `json:"from"`
	Tenants []string `json:"tenants,omitempty"`
}

// PeerUpdateReply is the response to a PeerUpdate; Tenants is only set for
// hello (see PeerUpdate).
type PeerUpdateReply struct {
	Tenants []string `json:"tenants,omitempty"`
}

// Sender ships handoffs and updates to peers, retrying transient failures
// with exponential backoff. A 503 with Retry-After (the receiver is busy or
// itself waiting on a pending migration) honours the hint. Senders hold no
// locks — the serve layer freezes sessions first, then ships.
type Sender struct {
	HTTPClient *http.Client
	// MaxAttempts per Send/SendUpdate (default 5).
	MaxAttempts int
	// BaseDelay is the first retry delay, doubling per attempt (default
	// 50ms, capped at 2s).
	BaseDelay time.Duration
	// Sleep replaces time sleeping in tests.
	Sleep func(time.Duration)
}

func (s *Sender) client() *http.Client {
	if s.HTTPClient != nil {
		return s.HTTPClient
	}
	return http.DefaultClient
}

func (s *Sender) attempts() int {
	if s.MaxAttempts > 0 {
		return s.MaxAttempts
	}
	return 5
}

func (s *Sender) sleep(ctx context.Context, d time.Duration) error {
	if s.Sleep != nil {
		s.Sleep(d)
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// backoff returns the delay before retry attempt (0-based), honouring a
// Retry-After hint when it is longer.
func (s *Sender) backoff(attempt int, hint time.Duration) time.Duration {
	base := s.BaseDelay
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	d := base << attempt
	if max := 2 * time.Second; d > max {
		d = max
	}
	if hint > d {
		d = hint
	}
	return d
}

// Send ships one handoff to peer, retrying until it is acknowledged or
// attempts are exhausted. Acknowledgement (200) means the receiver has the
// state durable (installed or recognised as a duplicate) — only then may
// the caller delete its local copy.
func (s *Sender) Send(ctx context.Context, peer string, h Handoff) error {
	return s.SendTo(ctx, peer, HandoffPath, h)
}

// SendTo ships one handoff-framed record to an explicit endpoint on peer:
// HandoffPath moves ownership, ReplicatePath feeds the peer's warm-standby
// store. Retry semantics are identical — both receivers are idempotent on
// the Ticks key, so redelivery is always safe.
func (s *Sender) SendTo(ctx context.Context, peer, path string, h Handoff) error {
	body, err := EncodeHandoff(h)
	if err != nil {
		return err
	}
	var lastErr error
	for attempt := 0; attempt < s.attempts(); attempt++ {
		if attempt > 0 {
			hint := retryAfterOf(lastErr)
			if err := s.sleep(ctx, s.backoff(attempt-1, hint)); err != nil {
				return err
			}
		}
		lastErr = s.post(ctx, peer+path, "application/octet-stream", body, nil)
		if lastErr == nil {
			return nil
		}
		if ctx.Err() != nil || isTerminal(lastErr) {
			return fmt.Errorf("cluster: handoff %s to %s: %w", h.Tenant, peer, lastErr)
		}
	}
	return fmt.Errorf("cluster: handoff %s to %s: %w", h.Tenant, peer, lastErr)
}

// SendUpdate posts one peer announcement and decodes the reply. Updates are
// advisory (the prober converges the view anyway) so they retry less hard
// than handoffs.
func (s *Sender) SendUpdate(ctx context.Context, peer string, u PeerUpdate) (PeerUpdateReply, error) {
	body, err := json.Marshal(u)
	if err != nil {
		return PeerUpdateReply{}, fmt.Errorf("cluster: encode update: %w", err)
	}
	var reply PeerUpdateReply
	var lastErr error
	for attempt := 0; attempt < s.attempts(); attempt++ {
		if attempt > 0 {
			if err := s.sleep(ctx, s.backoff(attempt-1, retryAfterOf(lastErr))); err != nil {
				return PeerUpdateReply{}, err
			}
		}
		reply = PeerUpdateReply{}
		lastErr = s.post(ctx, peer+UpdatePath, "application/json", body, &reply)
		if lastErr == nil {
			return reply, nil
		}
		if ctx.Err() != nil || isTerminal(lastErr) {
			return PeerUpdateReply{}, fmt.Errorf("cluster: update %s: %w", peer, lastErr)
		}
	}
	return PeerUpdateReply{}, fmt.Errorf("cluster: update %s: %w", peer, lastErr)
}

// RetryableError is a non-2xx response worth retrying, carrying the
// server's Retry-After hint when it sent one.
type RetryableError struct {
	Status     int
	RetryAfter time.Duration
}

func (e *RetryableError) Error() string {
	return fmt.Sprintf("cluster: peer answered %d (retry-after %s)", e.Status, e.RetryAfter)
}

func retryAfterOf(err error) time.Duration {
	var re *RetryableError
	if errors.As(err, &re) {
		return re.RetryAfter
	}
	return 0
}

// terminalError marks a response that retrying cannot fix (a 4xx other
// than 429: the peer understood the request and refused it).
type terminalError struct{ err error }

func (e *terminalError) Error() string { return e.err.Error() }
func (e *terminalError) Unwrap() error { return e.err }

func isTerminal(err error) bool {
	var te *terminalError
	return errors.As(err, &te)
}

// post performs one POST. Connection errors and 5xx/429 are retryable; a
// 4xx other than 429 is terminal (the peer understood and refused).
func (s *Sender) post(ctx context.Context, url, contentType string, body []byte, reply any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", contentType)
	resp, err := s.client().Do(req)
	if err != nil {
		return err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		_ = resp.Body.Close() // response already consumed; nothing to report
	}()
	switch {
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		if reply != nil {
			if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(reply); err != nil {
				return fmt.Errorf("cluster: decode reply: %w", err)
			}
		}
		return nil
	case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500:
		return &RetryableError{Status: resp.StatusCode, RetryAfter: ParseRetryAfter(resp.Header.Get("Retry-After"))}
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return &terminalError{fmt.Errorf("cluster: peer answered %d: %s", resp.StatusCode, bytes.TrimSpace(msg))}
	}
}

// ParseRetryAfter parses a Retry-After header's delay-seconds form. Zero
// for absent or unparseable (the HTTP-date form is not worth supporting for
// an internal protocol).
func ParseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}
