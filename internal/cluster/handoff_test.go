package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestHandoffRoundTrip(t *testing.T) {
	h := Handoff{
		Tenant:  "plant-7",
		Model:   "default",
		Ticks:   123,
		From:    "http://replica-0:9090",
		Payload: json.RawMessage(`{"stream":{"ticks":123}}`),
	}
	data, err := EncodeHandoff(h)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeHandoff(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tenant != h.Tenant || got.Model != h.Model || got.Ticks != h.Ticks || got.From != h.From {
		t.Fatalf("round trip mangled metadata: %+v", got)
	}
	if string(got.Payload) != string(h.Payload) {
		t.Fatalf("round trip mangled payload: %s", got.Payload)
	}
}

func TestDecodeHandoffRejectsCorruption(t *testing.T) {
	data, err := EncodeHandoff(Handoff{Tenant: "t", Ticks: 1, Payload: json.RawMessage(`{}`)})
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte: the CRC must catch it.
	bad := append([]byte(nil), data...)
	bad[len(bad)-1] ^= 0xFF
	if _, err := DecodeHandoff(bad); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("corrupted frame decoded: err=%v", err)
	}
	// Truncate: short frame.
	if _, err := DecodeHandoff(data[:len(data)-3]); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("truncated frame decoded: err=%v", err)
	}
	// Trailing garbage after the frame must not be silently ignored.
	if _, err := DecodeHandoff(append(append([]byte(nil), data...), 'x')); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("frame with trailing garbage decoded: err=%v", err)
	}
}

func TestSenderRetriesUntilAck(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != HandoffPath {
			t.Errorf("unexpected path %s", r.URL.Path)
		}
		if calls.Add(1) < 3 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	var slept []time.Duration
	s := &Sender{
		HTTPClient: srv.Client(),
		BaseDelay:  time.Millisecond,
		Sleep:      func(d time.Duration) { slept = append(slept, d) },
	}
	h := Handoff{Tenant: "t", Ticks: 5, Payload: json.RawMessage(`{}`)}
	if err := s.Send(context.Background(), srv.URL, h); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3", got)
	}
	if len(slept) != 2 {
		t.Fatalf("sleeps = %v, want 2 backoffs", slept)
	}
}

func TestSenderHonorsRetryAfterHint(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "2")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	var slept []time.Duration
	s := &Sender{
		HTTPClient: srv.Client(),
		BaseDelay:  time.Millisecond,
		Sleep:      func(d time.Duration) { slept = append(slept, d) },
	}
	err := s.Send(context.Background(), srv.URL, Handoff{Tenant: "t", Payload: json.RawMessage(`{}`)})
	if err != nil {
		t.Fatal(err)
	}
	if len(slept) != 1 || slept[0] != 2*time.Second {
		t.Fatalf("slept %v, want the server's 2s hint to win over the 1ms base", slept)
	}
}

func TestSenderTerminalOn4xx(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "no such model", http.StatusBadRequest)
	}))
	defer srv.Close()

	s := &Sender{HTTPClient: srv.Client(), BaseDelay: time.Millisecond, Sleep: func(time.Duration) {}}
	err := s.Send(context.Background(), srv.URL, Handoff{Tenant: "t", Payload: json.RawMessage(`{}`)})
	if err == nil {
		t.Fatal("4xx did not fail the send")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("4xx retried: %d attempts", got)
	}
}

func TestSendUpdateRoundTrip(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != UpdatePath {
			t.Errorf("unexpected path %s", r.URL.Path)
		}
		var u PeerUpdate
		if err := json.NewDecoder(r.Body).Decode(&u); err != nil {
			t.Errorf("decode update: %v", err)
		}
		if u.Kind != "hello" || u.From != "http://joiner:1" {
			t.Errorf("update = %+v", u)
		}
		_ = json.NewEncoder(w).Encode(PeerUpdateReply{Tenants: []string{"a", "b"}})
	}))
	defer srv.Close()

	s := &Sender{HTTPClient: srv.Client()}
	reply, err := s.SendUpdate(context.Background(), srv.URL, PeerUpdate{Kind: "hello", From: "http://joiner:1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(reply.Tenants) != 2 || reply.Tenants[0] != "a" {
		t.Fatalf("reply = %+v", reply)
	}
}

func TestParseRetryAfter(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want time.Duration
	}{
		{"", 0}, {"3", 3 * time.Second}, {"0", 0}, {"-1", 0}, {"soon", 0},
	} {
		if got := ParseRetryAfter(tc.in); got != tc.want {
			t.Errorf("ParseRetryAfter(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}
