package chaos

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"strings"
	"time"

	"mdes"
	"mdes/internal/cluster"
	"mdes/internal/faultfs"
	"mdes/internal/faultnet"
	"mdes/internal/serve"
)

// The standby soaks certify the warm-standby replication layer end to end:
//
//   - DiskLossSoak: an owner dies AND loses its disk mid-stream. The
//     tenant's ring successor must promote the replicated copy and keep the
//     stream alive (adopted, not degraded); when the owner reboots on an
//     empty disk, everything must ship home and the stream continue there.
//   - PartitionSoak: an owner is partitioned away (two-way or asymmetric,
//     optionally flapping) while its disk stays intact. The standby serves
//     during the outage; on heal, adopted state ships home before the
//     client's traffic returns to the owner.
//
// Both run the cluster's internal traffic (probes, handoffs, replication)
// through faultnet with standing faults — delays, duplicated deliveries,
// mid-body request truncation — so every protocol path is exercised under
// the failure model it claims to survive (DESIGN.md §7).
//
// The fork audit: every iteration compares the complete concatenated point
// stream of every tenant against a crash-free standalone reference,
// bit for bit, and the final server-side tick count against the count sent.
// If two replicas ever accepted the same tenant's ticks concurrently, one
// copy would consume a tick the other never saw — the surviving stream's
// points and tick count could not both match the reference. Bit-identity
// plus exact tick counts IS the at-most-one-writer proof.

// standbyDir is the warm-standby store directory on every soak replica.
const standbyDir = "standby"

// standingNetFaults is the always-on network fault mix for the cluster path.
// Drop stays 0: unreachability is scripted (partitions, kills), not random,
// so membership transitions in a soak are deterministic in wall-clock terms.
// Duplicate is safe here because every endpoint on this path (probe, handoff,
// replicate, update) is idempotent — the exact property the soak certifies.
func standingNetFaults() faultnet.Faults {
	return faultnet.Faults{
		Delay:       0.10,
		MaxDelay:    4 * time.Millisecond,
		Duplicate:   0.05,
		TruncateReq: 0.05,
	}
}

// connResetHandler kills connections at the TCP level: accept, then slam the
// connection shut. This is what a dead host looks like — clients and probes
// both get a connection error, which is what triggers the client's failover
// and the prober's Down verdict. (A 503-answering handler would not: the
// client treats 503 as backpressure from a live replica and keeps waiting.)
var connResetHandler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		panic("chaos: test server must support hijacking")
	}
	conn, _, err := hj.Hijack()
	if err == nil {
		_ = conn.Close() // the reset IS the behaviour under test
	}
})

// startStandbyReplica boots (or reboots) a replica with warm-standby
// replication on, its cluster traffic routed through net.
func startStandbyReplica(rep *replica, peers []string, model *mdes.Model, net *faultnet.Transport) error {
	srv, err := serve.New(serve.Options{
		Models:        map[string]*mdes.Model{"m": model},
		SnapshotDir:   "snaps",
		StandbyDir:    standbyDir,
		FS:            rep.fs,
		ScoreWorkers:  2,
		MaxInflight:   8,
		Peers:         peers,
		Advertise:     rep.url,
		RetryAfter:    10 * time.Millisecond, // header "0": clients retry at their own pace
		ProbeInterval: 25 * time.Millisecond,
		PendingTTL:    5 * time.Second,
		ClusterClient: &http.Client{Transport: net},
	})
	if err != nil {
		return err
	}
	rep.srv = srv
	rep.handler.Store(replicaBox{srv})
	return nil
}

// standbyFile mirrors the serve layer's (owner, tenant) → standby path
// mapping; the soaks read replicated copies from outside the server.
func standbyFile(dir, owner, tenant string) string {
	return fmt.Sprintf("%s/%x-%x.standby", dir, []byte(owner), []byte(tenant))
}

// waitStandbyTicks polls a replica's standby store until it holds a copy of
// tenant (keyed by owner) with at least want ticks, returning how long that
// took — the observed replication lag from batch acknowledgement to durable
// standby copy.
func waitStandbyTicks(ifs *faultfs.InjectFS, owner, tenant string, want int) (time.Duration, error) {
	start := time.Now()
	deadline := start.Add(15 * time.Second)
	for {
		data, err := ifs.ReadFile(standbyFile(standbyDir, owner, tenant))
		if err == nil {
			if h, derr := cluster.DecodeHandoff(data); derr == nil && h.Ticks >= want {
				return time.Since(start), nil
			}
		} else if !errors.Is(err, fs.ErrNotExist) {
			return 0, err
		}
		if time.Now().After(deadline) {
			return 0, fmt.Errorf("standby copy of %q never reached %d ticks", tenant, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// sessionAt asks one specific replica (no ring routing, no redirects) for a
// tenant's session info. The soaks use it to observe which replica serves a
// tenant, and with what state, without the client's failover masking it.
func sessionAt(ctx context.Context, replicaURL, tenant string) (serve.SessionInfo, int, error) {
	var info serve.SessionInfo
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, replicaURL+"/v1/streams/"+tenant, nil)
	if err != nil {
		return info, 0, err
	}
	hc := http.Client{CheckRedirect: func(*http.Request, []*http.Request) error { return http.ErrUseLastResponse }}
	resp, err := hc.Do(req)
	if err != nil {
		return info, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return info, resp.StatusCode, nil
	}
	return info, resp.StatusCode, json.NewDecoder(resp.Body).Decode(&info)
}

// waitHomedAt polls a replica until it serves tenant itself — un-adopted, at
// exactly want ticks — proving the ship-home exchange completed.
func waitHomedAt(ctx context.Context, replicaURL, tenant string, want int) error {
	deadline := time.Now().Add(15 * time.Second)
	for {
		info, code, err := sessionAt(ctx, replicaURL, tenant)
		if err == nil && code == http.StatusOK && !info.Adopted && info.Ticks == want {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("tenant %q never shipped home to %s at %d ticks (last: code=%d info=%+v err=%v)",
				tenant, replicaURL, want, code, info, err)
		}
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// hostOf extracts the host:port a faultnet partition keys on.
func hostOf(base string) string {
	u, err := url.Parse(base)
	if err != nil {
		panic(fmt.Sprintf("chaos: unparseable replica url %q", base))
	}
	return u.Host
}

// standbyHarness is the shared 3-replica setup for both standby soaks.
type standbyHarness struct {
	replicas []*replica
	peers    []string
	nets     []*faultnet.Transport // per-replica cluster transports
	clientNT *faultnet.Transport   // the driving client's transport
	ring     *cluster.Ring
	client   *serve.Client
	closers  []func()
}

func newStandbyHarness(seed int64, it int, model *mdes.Model) (*standbyHarness, error) {
	h := &standbyHarness{}
	for i := 0; i < clusterReplicas; i++ {
		r := &replica{fs: faultfs.NewInject(seed*3_000_017+int64(it*clusterReplicas+i), faultfs.Faults{})}
		r.handler.Store(replicaBox{deadHandler})
		hs := httptest.NewServer(r)
		h.closers = append(h.closers, hs.Close)
		r.url = hs.URL
		h.replicas = append(h.replicas, r)
		h.peers = append(h.peers, r.url)
		h.nets = append(h.nets, faultnet.New(nil, seed*5_000_011+int64(it*clusterReplicas+i), standingNetFaults()))
	}
	for i, r := range h.replicas {
		if err := startStandbyReplica(r, h.peers, model, h.nets[i]); err != nil {
			h.close()
			return nil, err
		}
	}
	ring, err := cluster.NewRing(h.peers, 0)
	if err != nil {
		h.close()
		return nil, err
	}
	h.ring = ring
	// The client's transport injects delays only: tick uploads are not
	// idempotent (duplication would fork the stream by construction) and
	// truncating them tests the HTTP layer, not the replication protocol.
	h.clientNT = faultnet.New(nil, seed*7_000_003+int64(it), faultnet.Faults{Delay: 0.05, MaxDelay: 2 * time.Millisecond})
	h.client = &serve.Client{
		Peers:      h.peers,
		HTTPClient: &http.Client{Transport: h.clientNT},
		Retry:      serve.RetryPolicy{MaxAttempts: 2000, BaseDelay: 2 * time.Millisecond, MaxDelay: 20 * time.Millisecond},
	}
	return h, nil
}

func (h *standbyHarness) close() {
	for _, r := range h.replicas {
		if r.srv != nil {
			_ = r.srv.Shutdown(context.Background())
		}
	}
	for _, c := range h.closers {
		c()
	}
}

// victimOf picks the replica owning tenant and lists everything it owns.
func (h *standbyHarness) victimOf(tenant string) (victim int, owned []string) {
	ownerURL := h.ring.Owner(tenant)
	victim = -1
	for i, u := range h.peers {
		if u == ownerURL {
			victim = i
		}
	}
	for _, tn := range clusterTenants {
		if h.ring.Owner(tn) == ownerURL {
			owned = append(owned, tn)
		}
	}
	return victim, owned
}

// successorIdx resolves which replica is tenant's warm standby.
func (h *standbyHarness) successorIdx(tenant string) int {
	succ := h.ring.SuccessorAmong(tenant, h.ring.Owner(tenant), nil)
	for i, u := range h.peers {
		if u == succ {
			return i
		}
	}
	return -1
}

// surveyTenant describes where a tenant's state lives across the harness at
// failure time: each replica's standby-copy ticks for (owner, tenant), its
// live session view, and its replication counters. Diagnostic only — it
// turns "copy never arrived" timeouts into an answer to "so where IS it?".
func (h *standbyHarness) surveyTenant(ctx context.Context, owner, tenant string) string {
	var b strings.Builder
	for i, rep := range h.replicas {
		fmt.Fprintf(&b, "\n  replica %d (%s):", i, h.peers[i])
		if data, err := rep.fs.ReadFile(standbyFile(standbyDir, owner, tenant)); err == nil {
			if hh, derr := cluster.DecodeHandoff(data); derr == nil {
				fmt.Fprintf(&b, " copy@%d", hh.Ticks)
			} else {
				fmt.Fprintf(&b, " copy-undecodable(%v)", derr)
			}
		} else {
			b.WriteString(" no-copy")
		}
		if info, code, err := sessionAt(ctx, h.peers[i], tenant); err == nil && code == http.StatusOK {
			fmt.Fprintf(&b, " session{ticks:%d adopted:%v}", info.Ticks, info.Adopted)
		} else {
			fmt.Fprintf(&b, " session{code:%d err:%v}", code, err)
		}
		resp, err := http.Get(h.peers[i] + "/metrics")
		if err != nil {
			continue
		}
		raw, _ := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		for _, line := range strings.Split(string(raw), "\n") {
			if strings.HasPrefix(line, "mdes_serve_repl_") && !strings.HasSuffix(line, " 0") &&
				!strings.Contains(line, "lag_seconds_bucket") {
				fmt.Fprintf(&b, " %s", strings.TrimPrefix(line, "mdes_serve_"))
			}
		}
	}
	return b.String()
}

// netStats sums fault counters across every transport in the harness.
func (h *standbyHarness) netStats() faultnet.Stats {
	var total faultnet.Stats
	for _, nt := range append([]*faultnet.Transport{h.clientNT}, h.nets...) {
		s := nt.Snapshot()
		total.Drops += s.Drops
		total.Delays += s.Delays
		total.Duplicates += s.Duplicates
		total.TruncatedReq += s.TruncatedReq
		total.TruncatedResp += s.TruncatedResp
		total.Partitioned += s.Partitioned
		total.Requests += s.Requests
	}
	return total
}

// auditStreams is the shared end-of-iteration audit: every tenant's full
// point stream bit-identical to the standalone reference, and the
// authoritative session holding exactly the ticks that were sent.
func auditStreams(ctx context.Context, client *serve.Client, got map[string][]serve.WirePoint, points map[string][]*mdes.Point) error {
	for _, tenant := range clusterTenants {
		var want []serve.WirePoint
		for _, p := range points[tenant] {
			if p != nil {
				want = append(want, serve.PointWire(*p))
			}
		}
		if !reflect.DeepEqual(got[tenant], want) {
			return fmt.Errorf("tenant %q points diverge from reference: got %d points %+v, want %d %+v",
				tenant, len(got[tenant]), got[tenant], len(want), want)
		}
		info, err := client.Session(ctx, tenant)
		if err != nil {
			return fmt.Errorf("verify tenant %q: %w", tenant, err)
		}
		if info.Ticks != serveTicks {
			return fmt.Errorf("tenant %q: server holds %d ticks, sent %d — ticks lost or forked", tenant, info.Ticks, serveTicks)
		}
	}
	return nil
}

// DiskLossSoakReport summarises one DiskLossSoak run.
type DiskLossSoakReport struct {
	Iterations int
	Promotions int // outage windows served from the standby's replicated copy
	ShipsHome  int // tenants recovered onto the wiped owner after revival
	// ReplLag samples the enqueue-to-durable-standby-copy lag observed at
	// each kill boundary; PromotionLatency samples kill-to-first-served-tick.
	ReplLag          []time.Duration
	PromotionLatency []time.Duration
	Net              faultnet.Stats
}

// DiskLossSoak runs iters owner-dies-with-its-disk cycles: tenants stream
// tick batches; at a seeded batch boundary the owner of a seeded tenant goes
// dark at the TCP level AND its filesystem is replaced with an empty one
// (total disk loss). The stream must continue through the warm standby —
// served from the replicated copy, adopted and not degraded — and when the
// owner reboots on the empty disk, every tenant must ship home and finish
// there. Zero lost ticks, bit-identical points, every iteration.
func DiskLossSoak(ctx context.Context, seed int64, iters int) (DiskLossSoakReport, error) {
	rep := DiskLossSoakReport{Iterations: iters}
	if err := fixture(); err != nil {
		return rep, err
	}
	model := fixModel

	ticks := make(map[string][]map[string]string, len(clusterTenants))
	points := make(map[string][]*mdes.Point, len(clusterTenants))
	for _, tenant := range clusterTenants {
		ticks[tenant] = tenantTicks(tenant)
		_, p, err := referenceBoundaries(model, ticks[tenant])
		if err != nil {
			return rep, fmt.Errorf("chaos: reference stream for %q: %w", tenant, err)
		}
		points[tenant] = p
	}

	rng := rand.New(rand.NewSource(seed))
	for it := 0; it < iters; it++ {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		if err := diskLossIteration(ctx, rng, seed, it, model, ticks, points, &rep); err != nil {
			return rep, fmt.Errorf("chaos: disk-loss iteration %d: %w", it, err)
		}
	}
	return rep, nil
}

func diskLossIteration(ctx context.Context, rng *rand.Rand, seed int64, it int, model *mdes.Model,
	ticks map[string][]map[string]string, points map[string][]*mdes.Point, rep *DiskLossSoakReport) error {

	h, err := newStandbyHarness(seed, it, model)
	if err != nil {
		return err
	}
	defer h.close()

	victim, victimTenants := h.victimOf(clusterTenants[rng.Intn(len(clusterTenants))])
	victimURL := h.peers[victim]
	// Kill between the first and second-to-last boundaries, revive one batch
	// later: at least one pre-kill replication, at least one batch served by
	// the standby, at least one batch after the owner's return.
	killAt := serveBatch * (1 + rng.Intn(serveTicks/serveBatch-2))
	reviveAt := killAt + serveBatch

	got := make(map[string][]serve.WirePoint, len(clusterTenants))
	var killTime time.Time
	promoLatencySampled := false

	for off := 0; off < serveTicks; off += serveBatch {
		if off == killAt {
			// The kill is scripted AFTER replication has drained: the soak
			// certifies failover from a copy that exists, and the drain wait
			// doubles as the replication-lag probe. (Loss of the in-flight
			// copy is legal — replication is lossy by design — but then the
			// standby would refuse the tenant and this audit wants service.)
			for _, tn := range victimTenants {
				lag, err := waitStandbyTicks(h.replicas[h.successorIdx(tn)].fs, victimURL, tn, off)
				if err != nil {
					return fmt.Errorf("%w; survey:%s", err, h.surveyTenant(ctx, victimURL, tn))
				}
				rep.ReplLag = append(rep.ReplLag, lag)
			}
			killTime = time.Now()
			h.replicas[victim].handler.Store(replicaBox{connResetHandler})
			_ = h.replicas[victim].srv.Shutdown(ctx)
			// Total disk loss: snapshots, standby store, everything.
			h.replicas[victim].fs = faultfs.NewInject(seed*9_000_041+int64(it), faultfs.Faults{})
		}
		if off == reviveAt {
			if err := startStandbyReplica(h.replicas[victim], h.peers, model, h.nets[victim]); err != nil {
				return err
			}
		}
		for _, tenant := range clusterTenants {
			hi := off + serveBatch
			if hi > serveTicks {
				hi = serveTicks
			}
			ps, err := h.client.PushTicksRetry(ctx, tenant, ticks[tenant][off:hi])
			if err != nil {
				return fmt.Errorf("tenant %q ticks [%d,%d): %w", tenant, off, hi, err)
			}
			got[tenant] = append(got[tenant], ps...)
			if off == killAt && !promoLatencySampled {
				for _, tn := range victimTenants {
					if tn == tenant {
						rep.PromotionLatency = append(rep.PromotionLatency, time.Since(killTime))
						promoLatencySampled = true
					}
				}
			}
		}
		if off == killAt {
			// The outage batch landed. Prove it was served by the standby
			// from real state: adopted, full tick count, not degraded.
			for _, tn := range victimTenants {
				info, code, err := sessionAt(ctx, h.peers[h.successorIdx(tn)], tn)
				if err != nil || code != http.StatusOK {
					return fmt.Errorf("standby session for %q: code=%d err=%v", tn, code, err)
				}
				if !info.Adopted || info.Degraded || info.Ticks != off+serveBatch {
					return fmt.Errorf("standby serves %q as %+v, want adopted, not degraded, %d ticks", tn, info, off+serveBatch)
				}
			}
			rep.Promotions++
		}
	}

	// The revived owner must end up serving every one of its tenants itself,
	// un-adopted, from the shipped-home state — its disk started empty, so
	// every tick it now holds arrived via the standby's replicated copy.
	for _, tn := range victimTenants {
		if err := waitHomedAt(ctx, victimURL, tn, serveTicks); err != nil {
			return err
		}
		rep.ShipsHome++
	}
	if err := auditStreams(ctx, h.client, got, points); err != nil {
		return err
	}
	s := h.netStats()
	rep.Net.Drops += s.Drops
	rep.Net.Delays += s.Delays
	rep.Net.Duplicates += s.Duplicates
	rep.Net.TruncatedReq += s.TruncatedReq
	rep.Net.TruncatedResp += s.TruncatedResp
	rep.Net.Partitioned += s.Partitioned
	rep.Net.Requests += s.Requests
	return nil
}

// PartitionSoakReport summarises one PartitionSoak run.
type PartitionSoakReport struct {
	Iterations int
	Partitions int // partition windows scripted, flap re-partitions included
	OneWay     int // asymmetric windows (peers cut off from the victim only)
	Flaps      int // iterations that partitioned, healed, and partitioned again
	Promotions int // outage windows served from the standby's replicated copy
	Net        faultnet.Stats
}

// PartitionSoak runs iters partition-and-heal cycles: at a seeded batch
// boundary the owner of a seeded tenant is partitioned away — two-way, or
// asymmetric (the failure detectors' nightmare: the victim still sees a
// healthy cluster while the cluster sees it dead) — with the driving client
// on the majority side, as a real network split would put it. The standby
// serves the outage window from its replicated copy. Healing is ordered the
// way the protocol requires: cluster links first, then a wait for the
// adopted state to ship home, and only then the client's path to the owner.
// Flap iterations run the whole cycle twice. The fork audit (bit-identical
// points, exact tick counts) proves at most one replica ever consumed a
// given tenant's ticks.
func PartitionSoak(ctx context.Context, seed int64, iters int) (PartitionSoakReport, error) {
	rep := PartitionSoakReport{Iterations: iters}
	if err := fixture(); err != nil {
		return rep, err
	}
	model := fixModel

	ticks := make(map[string][]map[string]string, len(clusterTenants))
	points := make(map[string][]*mdes.Point, len(clusterTenants))
	for _, tenant := range clusterTenants {
		ticks[tenant] = tenantTicks(tenant)
		_, p, err := referenceBoundaries(model, ticks[tenant])
		if err != nil {
			return rep, fmt.Errorf("chaos: reference stream for %q: %w", tenant, err)
		}
		points[tenant] = p
	}

	rng := rand.New(rand.NewSource(seed))
	for it := 0; it < iters; it++ {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		if err := partitionIteration(ctx, rng, seed, it, model, ticks, points, &rep); err != nil {
			return rep, fmt.Errorf("chaos: partition iteration %d: %w", it, err)
		}
	}
	return rep, nil
}

func partitionIteration(ctx context.Context, rng *rand.Rand, seed int64, it int, model *mdes.Model,
	ticks map[string][]map[string]string, points map[string][]*mdes.Point, rep *PartitionSoakReport) error {

	h, err := newStandbyHarness(seed, it, model)
	if err != nil {
		return err
	}
	defer h.close()

	victim, victimTenants := h.victimOf(clusterTenants[rng.Intn(len(clusterTenants))])
	victimURL := h.peers[victim]
	victimHost := hostOf(victimURL)
	oneWay := rng.Intn(2) == 0
	flap := rng.Intn(2) == 0

	// Boundary schedule. A window is [cut, heal): the batches pushed at
	// boundaries in that range go through the standby. Flap iterations run a
	// second window after the first heals — the link that comes back and
	// dies again, with the second adoption fed by the re-seeded copy.
	//   flap:   cut@6  heal@18 cut@24 heal@30
	//   plain:  cut@6|12, heal 12 ticks later
	cutAt, healAt := serveBatch*(1+rng.Intn(2)), 0
	if flap {
		cutAt = serveBatch
	}
	healAt = cutAt + 2*serveBatch
	cut2At, heal2At := -1, -1
	if flap {
		cut2At = healAt + serveBatch
		heal2At = cut2At + serveBatch
	}

	cutLinks := func() {
		// Peers (and the client, which sits on their side of the split)
		// cannot reach the victim.
		for i, nt := range h.nets {
			if i != victim {
				nt.Partition(victimHost)
			}
		}
		h.clientNT.Partition(victimHost)
		if !oneWay {
			// Two-way: the victim cannot reach anyone either, so its own
			// membership view degrades too. (One-way leaves the victim
			// believing the cluster is healthy — the harder case for the
			// failure detector, covered by the per-request ownership gate.)
			for i, p := range h.peers {
				if i != victim {
					h.nets[victim].Partition(hostOf(p))
				}
			}
		}
		rep.Partitions++
		if oneWay {
			rep.OneWay++
		}
	}
	// healLinks restores the cluster paths ONLY — the client's path to the
	// victim stays cut until the adopted state has shipped home. This is the
	// protocol's required heal order: the window between "owner reachable
	// again" and "fresh state landed on it" is covered by the inbound-pend
	// exchange for cluster traffic, and by keeping the client away for
	// client traffic.
	healLinks := func(pushedTicks int) error {
		for _, nt := range h.nets {
			nt.HealAll()
		}
		for _, tn := range victimTenants {
			if err := waitHomedAt(ctx, victimURL, tn, pushedTicks); err != nil {
				return err
			}
		}
		h.clientNT.Heal(victimHost)
		return nil
	}

	got := make(map[string][]serve.WirePoint, len(clusterTenants))
	inOutage := false
	for off := 0; off < serveTicks; off += serveBatch {
		switch off {
		case cutAt, cut2At:
			// Replication must have drained before the owner disappears —
			// same reasoning as the disk-loss kill.
			for _, tn := range victimTenants {
				if _, err := waitStandbyTicks(h.replicas[h.successorIdx(tn)].fs, victimURL, tn, off); err != nil {
					return fmt.Errorf("%w; survey:%s", err, h.surveyTenant(ctx, victimURL, tn))
				}
			}
			cutLinks()
			inOutage = true
		case healAt, heal2At:
			if err := healLinks(off); err != nil {
				return err
			}
			inOutage = false
		}
		for _, tenant := range clusterTenants {
			hi := off + serveBatch
			if hi > serveTicks {
				hi = serveTicks
			}
			ps, err := h.client.PushTicksRetry(ctx, tenant, ticks[tenant][off:hi])
			if err != nil {
				return fmt.Errorf("tenant %q ticks [%d,%d): %w", tenant, off, hi, err)
			}
			got[tenant] = append(got[tenant], ps...)
		}
		if inOutage && (off == cutAt || off == cut2At) {
			for _, tn := range victimTenants {
				info, code, err := sessionAt(ctx, h.peers[h.successorIdx(tn)], tn)
				if err != nil || code != http.StatusOK {
					return fmt.Errorf("standby session for %q: code=%d err=%v", tn, code, err)
				}
				if !info.Adopted || info.Degraded || info.Ticks != off+serveBatch {
					return fmt.Errorf("standby serves %q as %+v, want adopted, not degraded, %d ticks", tn, info, off+serveBatch)
				}
			}
			rep.Promotions++
		}
	}
	if flap {
		rep.Flaps++
	}

	// Final heal (the flap schedule ends healed; this is a no-op then) and
	// the fork audit.
	if err := healLinks(serveTicks); err != nil {
		return err
	}
	if err := auditStreams(ctx, h.client, got, points); err != nil {
		return err
	}
	s := h.netStats()
	if s.Partitioned == 0 {
		return errors.New("no round trip was ever refused by a partition; the soak exercised nothing")
	}
	rep.Net.Drops += s.Drops
	rep.Net.Delays += s.Delays
	rep.Net.Duplicates += s.Duplicates
	rep.Net.TruncatedReq += s.TruncatedReq
	rep.Net.TruncatedResp += s.TruncatedResp
	rep.Net.Partitioned += s.Partitioned
	rep.Net.Requests += s.Requests
	return nil
}
