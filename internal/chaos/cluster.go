package chaos

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"time"

	"mdes"
	"mdes/internal/faultfs"
	"mdes/internal/serve"
)

// clusterTenants is the tenant set every ClusterSoak iteration drives —
// enough that, whichever replica the ring favours, the victim owns some and
// the survivors own others.
var clusterTenants = []string{"plant-a", "plant-b", "plant-c", "plant-d", "plant-e"}

const clusterReplicas = 3

// ClusterSoakReport summarises one ClusterSoak run.
type ClusterSoakReport struct {
	Iterations int
	HardKills  int   // iterations that killed the victim without warning
	Drains     int   // iterations that drained the victim gracefully
	Moved      int   // tenants migrated by graceful drains, summed
	Redirects  int64 // ownership redirects the driving client followed
}

// replica is one cluster member under the soak's control: its fixed HTTP
// address outlives the server process behind it, exactly like a host whose
// process dies and restarts.
type replica struct {
	url     string
	handler atomic.Value // holds replicaBox
	fs      *faultfs.InjectFS
	srv     *serve.Server
}

type replicaBox struct{ h http.Handler }

func (r *replica) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	r.handler.Load().(replicaBox).h.ServeHTTP(w, req)
}

// deadHandler answers everything — health checks included — with 503 and an
// immediate-retry hint, which is how a killed replica looks to peers (probes
// fail) and to clients (backpressure, batch not consumed).
var deadHandler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Retry-After", "0")
	http.Error(w, "killed", http.StatusServiceUnavailable)
})

// startReplica boots (or reboots) the serve process behind a replica's
// address, against whatever state its disk holds.
func startReplica(rep *replica, peers []string, model *mdes.Model) error {
	srv, err := serve.New(serve.Options{
		Models:        map[string]*mdes.Model{"m": model},
		SnapshotDir:   "snaps",
		FS:            rep.fs,
		ScoreWorkers:  2,
		MaxInflight:   8,
		Peers:         peers,
		Advertise:     rep.url,
		RetryAfter:    10 * time.Millisecond, // header "0": clients retry at their own pace
		ProbeInterval: 25 * time.Millisecond,
		PendingTTL:    2 * time.Second,
	})
	if err != nil {
		return err
	}
	rep.srv = srv
	rep.handler.Store(replicaBox{srv})
	return nil
}

// ClusterSoak runs iters kill-a-replica cycles over a three-replica cluster:
// five tenants stream tick batches through the sharding client while one
// replica — chosen per iteration by the seeded rng — either drains
// gracefully (snapshot handoff to the survivors) or dies without warning at
// a batch boundary and reboots from its own disk. Either way, every
// tenant's full point stream must be bit-identical to a single-replica
// crash-free reference, and every tenant's final server-side tick count
// must equal what was sent: no tick lost, no stream forked, no divergence.
func ClusterSoak(ctx context.Context, seed int64, iters int) (ClusterSoakReport, error) {
	rep := ClusterSoakReport{Iterations: iters}
	if err := fixture(); err != nil {
		return rep, err
	}
	model := fixModel

	ticks := make(map[string][]map[string]string, len(clusterTenants))
	points := make(map[string][]*mdes.Point, len(clusterTenants))
	for _, tenant := range clusterTenants {
		ticks[tenant] = tenantTicks(tenant)
		_, p, err := referenceBoundaries(model, ticks[tenant])
		if err != nil {
			return rep, fmt.Errorf("chaos: reference stream for %q: %w", tenant, err)
		}
		points[tenant] = p
	}

	rng := rand.New(rand.NewSource(seed))
	for it := 0; it < iters; it++ {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		if err := clusterIteration(ctx, rng, seed, it, model, ticks, points, &rep); err != nil {
			return rep, fmt.Errorf("chaos: cluster iteration %d: %w", it, err)
		}
	}
	return rep, nil
}

func clusterIteration(ctx context.Context, rng *rand.Rand, seed int64, it int, model *mdes.Model,
	ticks map[string][]map[string]string, points map[string][]*mdes.Point, rep *ClusterSoakReport) error {

	// Addresses first (the static peer list needs every URL), processes after.
	replicas := make([]*replica, clusterReplicas)
	peers := make([]string, clusterReplicas)
	for i := range replicas {
		r := &replica{fs: faultfs.NewInject(seed*2_000_003+int64(it*clusterReplicas+i), faultfs.Faults{})}
		r.handler.Store(replicaBox{deadHandler})
		hs := httptest.NewServer(r)
		defer hs.Close()
		r.url = hs.URL
		replicas[i] = r
		peers[i] = r.url
	}
	for _, r := range replicas {
		if err := startReplica(r, peers, model); err != nil {
			return err
		}
	}
	defer func() {
		for _, r := range replicas {
			_ = r.srv.Shutdown(context.Background())
		}
	}()

	victim := rng.Intn(clusterReplicas)
	hardKill := rng.Intn(2) == 0
	killAt := serveBatch * (1 + rng.Intn(serveTicks/serveBatch-1)) // a batch boundary, never 0

	client := &serve.Client{
		Peers: peers,
		Retry: serve.RetryPolicy{MaxAttempts: 200, BaseDelay: 2 * time.Millisecond, MaxDelay: 20 * time.Millisecond},
	}
	got := make(map[string][]serve.WirePoint, len(clusterTenants))

	for off := 0; off < serveTicks; off += serveBatch {
		if off == killAt {
			if hardKill {
				// No warning, no drain: the address goes dark at a request
				// boundary (the last acked batch is the last durable state),
				// then the process reboots from its own disk and rejoins.
				rep.HardKills++
				replicas[victim].handler.Store(replicaBox{deadHandler})
				_ = replicas[victim].srv.Shutdown(ctx) // reclaim goroutines; disk already holds boundary state
				if err := startReplica(replicas[victim], peers, model); err != nil {
					return err
				}
			} else {
				rep.Drains++
				moved, err := replicas[victim].srv.DrainToPeers(ctx)
				if err != nil {
					return fmt.Errorf("drain replica %d: %w", victim, err)
				}
				rep.Moved += moved
				// The drained process stays up, answering misroutes with the
				// new owner's address until the operator takes it away.
			}
		}
		for _, tenant := range clusterTenants {
			hi := off + serveBatch
			if hi > serveTicks {
				hi = serveTicks
			}
			ps, err := client.PushTicksRetry(ctx, tenant, ticks[tenant][off:hi])
			if err != nil {
				return fmt.Errorf("tenant %q ticks [%d,%d): %w", tenant, off, hi, err)
			}
			got[tenant] = append(got[tenant], ps...)
		}
	}

	// Post-recovery audit: full point streams bit-identical to the
	// single-replica reference, and no tick lost anywhere.
	for _, tenant := range clusterTenants {
		var want []serve.WirePoint
		for _, p := range points[tenant] {
			if p != nil {
				want = append(want, serve.PointWire(*p))
			}
		}
		if !reflect.DeepEqual(got[tenant], want) {
			return fmt.Errorf("tenant %q points diverge from reference: got %+v, want %+v", tenant, got[tenant], want)
		}
		info, err := client.Session(ctx, tenant)
		if err != nil {
			return fmt.Errorf("verify tenant %q: %w", tenant, err)
		}
		if info.Ticks != serveTicks {
			return fmt.Errorf("tenant %q: server holds %d ticks, sent %d", tenant, info.Ticks, serveTicks)
		}
	}
	st := client.Stats()
	rep.Redirects += st.Redirects
	return nil
}
