package chaos

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"net/http/httptest"
	"reflect"

	"mdes"
	"mdes/internal/checkpoint"
	"mdes/internal/faultfs"
	"mdes/internal/serve"
)

// serveTenants is the tenant set every ServeSoak iteration drives; more than
// one so a crash interleaves with several sessions' persistence.
var serveTenants = []string{"alpha", "beta", "gamma"}

const (
	serveTicks = 36 // ticks pushed per tenant per iteration
	serveBatch = 6  // ticks per request; snapshots land on these boundaries
)

// snapMirror decodes the serve layer's snapshot record (the wire format is
// part of the durability contract; the soak checks it from the outside).
type snapMirror struct {
	Tenant string              `json:"tenant"`
	Model  string              `json:"model"`
	Stream mdes.StreamSnapshot `json:"stream"`
}

// ServeSoakReport summarises one ServeSoak run.
type ServeSoakReport struct {
	Iterations  int
	Crashes     int // iterations whose crash point fired mid-workload
	FreshStarts int // tenant recoveries that found no usable snapshot
	Restored    int // tenant recoveries that resumed from a snapshot
}

// tenantTicks derives each tenant's deterministic tick sequence from the
// soak dataset generator (distinct seed per tenant, same alphabet as the
// model's languages).
func tenantTicks(tenant string) []map[string]string {
	seed := int64(0)
	for _, r := range tenant {
		seed = seed*131 + int64(r)
	}
	ds := soakDataset(seed, serveTicks)
	out := make([]map[string]string, serveTicks)
	for t := 0; t < serveTicks; t++ {
		m := make(map[string]string, len(ds.Sequences))
		for _, s := range ds.Sequences {
			m[s.Sensor] = s.Events[t]
		}
		out[t] = m
	}
	return out
}

// referenceBoundaries replays a tenant's ticks on a standalone stream and
// captures the stream snapshot at every request boundary (the only states
// the server may legally persist), plus the points each tick emits.
func referenceBoundaries(model *mdes.Model, ticks []map[string]string) (map[int]mdes.StreamSnapshot, []*mdes.Point, error) {
	st := model.NewStream()
	bounds := map[int]mdes.StreamSnapshot{0: st.Snapshot()}
	points := make([]*mdes.Point, 0, len(ticks))
	for i, tick := range ticks {
		p, err := st.Push(tick)
		if err != nil {
			return nil, nil, err
		}
		points = append(points, p)
		if (i+1)%serveBatch == 0 || i == len(ticks)-1 {
			bounds[st.Ticks()] = st.Snapshot()
		}
	}
	return bounds, points, nil
}

// ServeSoak runs iters crash/restart cycles of the multi-tenant server over
// an injected filesystem: ingest ticks for several tenants, crash at a
// random IO operation, recover the disk, and audit that (1) every surviving
// tenant snapshot is an intact frame whose stream state equals the
// reference at that request boundary — never torn, never off-boundary — and
// (2) a restarted server resumes each tenant from that snapshot and emits
// the remaining detection points bit-for-bit. The final state of the
// restarted server must match the crash-free reference exactly.
func ServeSoak(ctx context.Context, seed int64, iters int) (ServeSoakReport, error) {
	rep := ServeSoakReport{Iterations: iters}
	if err := fixture(); err != nil {
		return rep, err
	}
	model := fixModel
	const dir = "snaps"

	ticks := make(map[string][]map[string]string, len(serveTenants))
	bounds := make(map[string]map[int]mdes.StreamSnapshot, len(serveTenants))
	points := make(map[string][]*mdes.Point, len(serveTenants))
	for _, tenant := range serveTenants {
		ticks[tenant] = tenantTicks(tenant)
		b, p, err := referenceBoundaries(model, ticks[tenant])
		if err != nil {
			return rep, fmt.Errorf("chaos: reference stream for %q: %w", tenant, err)
		}
		bounds[tenant] = b
		points[tenant] = p
	}

	newServer := func(ifs *faultfs.InjectFS) (*serve.Server, *httptest.Server, error) {
		srv, err := serve.New(serve.Options{
			Models:       map[string]*mdes.Model{"m": model},
			SnapshotDir:  dir,
			FS:           ifs,
			ScoreWorkers: 2,
			MaxInflight:  8,
		})
		if err != nil {
			return nil, nil, err
		}
		return srv, httptest.NewServer(srv), nil
	}

	// pushAll drives every tenant's ticks from `from` in request batches,
	// round-robin across tenants so their persists interleave. IO errors are
	// returned; the caller decides whether they are expected (crash phase).
	pushAll := func(base string, from map[string]int) error {
		client := &serve.Client{BaseURL: base}
		var firstErr error
		for off := 0; off < serveTicks; off += serveBatch {
			for _, tenant := range serveTenants {
				start := from[tenant]
				lo, hi := off, off+serveBatch
				if hi > serveTicks {
					hi = serveTicks
				}
				if lo < start {
					lo = start
				}
				if lo >= hi {
					continue
				}
				if _, err := client.PushTicks(ctx, tenant, ticks[tenant][lo:hi]); err != nil {
					if firstErr == nil {
						firstErr = err
					}
				}
			}
		}
		return firstErr
	}

	// Probe: ops for one clean iteration (workload + shutdown), so the
	// crash sweep covers ingest persists and drain-time persists alike.
	probe := faultfs.NewInject(seed, faultfs.Faults{})
	srv, hs, err := newServer(probe)
	if err != nil {
		return rep, err
	}
	if err := pushAll(hs.URL, map[string]int{}); err != nil {
		return rep, fmt.Errorf("chaos: probe workload: %w", err)
	}
	hs.Close()
	if err := srv.Shutdown(ctx); err != nil {
		return rep, fmt.Errorf("chaos: probe shutdown: %w", err)
	}
	for _, tenant := range serveTenants {
		if err := auditTenant(probe, dir, tenant, bounds[tenant], serveTicks); err != nil {
			return rep, fmt.Errorf("chaos: probe: %w", err)
		}
	}
	totalOps := probe.Ops()

	rng := rand.New(rand.NewSource(seed))
	for it := 0; it < iters; it++ {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		ifs := faultfs.NewInject(seed*1_000_003+int64(it), standingFaults())
		ifs.CrashAfter(1 + rng.Int63n(totalOps))

		// Phase 1: ingest until the crash. Request errors are expected once
		// the disk is gone (or a standing fault fires); the stream state the
		// server acknowledged before then is what recovery is audited on.
		srv, hs, err := newServer(ifs)
		if err != nil {
			return rep, err
		}
		_ = pushAll(hs.URL, map[string]int{})
		hs.Close()
		_ = srv.Shutdown(ctx) // persists what it can onto the dying disk
		if ifs.Crashed() {
			rep.Crashes++
		}
		ifs.Recover()
		ifs.SetFaults(faultfs.Faults{})

		// Phase 2: the surviving snapshots must be intact, on-boundary, and
		// bit-identical to the reference at that boundary.
		resumeFrom := make(map[string]int, len(serveTenants))
		for _, tenant := range serveTenants {
			n, err := restoredTicks(ifs, dir, tenant, bounds[tenant])
			if err != nil {
				return rep, fmt.Errorf("chaos: iteration %d: %w", it, err)
			}
			resumeFrom[tenant] = n
			if n == 0 {
				rep.FreshStarts++
			} else {
				rep.Restored++
			}
		}

		// Phase 3: a restarted server must continue every tenant bit-for-bit
		// from its snapshot: remaining points identical to the reference,
		// final durable state identical to the crash-free run.
		srv2, hs2, err := newServer(ifs)
		if err != nil {
			return rep, err
		}
		client := &serve.Client{BaseURL: hs2.URL}
		for _, tenant := range serveTenants {
			from := resumeFrom[tenant]
			got, err := client.PushTicks(ctx, tenant, ticks[tenant][from:])
			if err != nil {
				hs2.Close()
				return rep, fmt.Errorf("chaos: iteration %d: resume %q: %w", it, tenant, err)
			}
			var want []serve.WirePoint
			for _, p := range points[tenant][from:] {
				if p != nil {
					want = append(want, serve.PointWire(*p))
				}
			}
			if !reflect.DeepEqual(got, want) {
				hs2.Close()
				return rep, fmt.Errorf("chaos: iteration %d: tenant %q resumed points diverge: got %+v, want %+v", it, tenant, got, want)
			}
		}
		hs2.Close()
		if err := srv2.Shutdown(ctx); err != nil {
			return rep, fmt.Errorf("chaos: iteration %d: clean shutdown after recovery: %w", it, err)
		}
		for _, tenant := range serveTenants {
			if err := auditTenant(ifs, dir, tenant, bounds[tenant], serveTicks); err != nil {
				return rep, fmt.Errorf("chaos: iteration %d: after resume: %w", it, err)
			}
		}
	}
	return rep, nil
}

// restoredTicks loads a tenant's durable snapshot directly off the recovered
// filesystem and validates it against the reference boundaries, returning
// the tick count the tenant will resume from (0 = fresh start).
func restoredTicks(ifs *faultfs.InjectFS, dir, tenant string, bounds map[int]mdes.StreamSnapshot) (int, error) {
	path := snapshotFile(dir, tenant)
	data, err := ifs.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("tenant %q: read snapshot: %w", tenant, err)
	}
	payloads, _, _ := checkpoint.Frames(data)
	if len(payloads) == 0 {
		// The install path syncs file content before the rename, so an
		// installed snapshot must never read torn — if it does, the
		// tmp+fsync+rename+syncdir chain has a hole.
		return 0, fmt.Errorf("tenant %q: installed snapshot is torn (%d bytes, no intact frame)", tenant, len(data))
	}
	var snap snapMirror
	if err := json.Unmarshal(payloads[len(payloads)-1], &snap); err != nil {
		return 0, fmt.Errorf("tenant %q: snapshot decode: %w", tenant, err)
	}
	want, ok := bounds[snap.Stream.Ticks]
	if !ok {
		return 0, fmt.Errorf("tenant %q: snapshot at tick %d, not a request boundary", tenant, snap.Stream.Ticks)
	}
	if !reflect.DeepEqual(snap.Stream, want) {
		return 0, fmt.Errorf("tenant %q: snapshot at tick %d diverges from reference", tenant, snap.Stream.Ticks)
	}
	return snap.Stream.Ticks, nil
}

// auditTenant asserts a tenant's durable snapshot is exactly the reference
// state at wantTicks.
func auditTenant(ifs *faultfs.InjectFS, dir, tenant string, bounds map[int]mdes.StreamSnapshot, wantTicks int) error {
	n, err := restoredTicks(ifs, dir, tenant, bounds)
	if err != nil {
		return err
	}
	if n != wantTicks {
		return fmt.Errorf("tenant %q: final snapshot at tick %d, want %d", tenant, n, wantTicks)
	}
	return nil
}

// snapshotFile mirrors the serve layer's tenant → path mapping (hex-encoded
// tenant + ".snap"); the soak reads snapshots from outside the server.
func snapshotFile(dir, tenant string) string {
	return fmt.Sprintf("%s/%x.snap", dir, []byte(tenant))
}
