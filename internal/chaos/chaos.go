// Package chaos adversarially proves the repo's durability claims. The
// checkpoint journal and the serve-layer snapshots promise that a crash at
// any instant loses at most the work in flight and that recovery resumes
// bit-for-bit; this package runs those paths over faultfs.InjectFS, kills
// them at every kind of IO point — torn writes, failed fsyncs, lost
// directory entries — and asserts the promise with checksums instead of
// trusting the comments.
//
// Three soaks, mirroring the three durable artefacts:
//
//   - TrainSoak:   train → crash at a random IO op → resume, until the
//     resumed model's weight checksum equals an uninterrupted run's.
//   - JournalSoak: append pair records → crash → recover, asserting the
//     journal is always an exact prefix of what was written.
//   - ServeSoak:   multi-tenant ingest → crash → restart, asserting every
//     recovered tenant snapshot sits at a request boundary with reference
//     content, and the restarted server continues each stream bit-for-bit.
//
// Every soak is deterministic in its seed: iteration k of seed s injects
// the same faults at the same operations on every machine.
package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"

	"mdes"
	"mdes/internal/checkpoint"
	"mdes/internal/faultfs"
	"mdes/internal/seqio"
)

// soakConfig is deliberately tiny — the soaks retrain pairs dozens of times,
// so per-pair cost dominates wall clock. ValidRange [0, 100] makes every
// edge a valid relationship regardless of converged quality, so the
// detection structure (and therefore the serve soak's scoring work) is
// deterministic even at these sizes.
func soakConfig() mdes.Config {
	return mdes.Config{
		Language: mdes.LanguageConfig{
			WordLen: 3, WordStride: 1, SentenceLen: 4, SentenceStride: 4,
		},
		NMT: mdes.NMTConfig{
			Embed: 8, Hidden: 8, Layers: 1,
			Dropout: 0, LearningRate: 5e-3, ClipNorm: 5,
			TrainSteps: 40, BatchSize: 4, MaxDecodeLen: 8,
		},
		ValidRange:      mdes.Range{Lo: 0, Hi: 100},
		PopularInDegree: 3,
		Seed:            7,
	}
}

// soakDataset generates three sensors — a and b coupled, c noise — so the
// soak model has 6 ordered pairs and a non-trivial relationship graph.
func soakDataset(seed int64, ticks int) *seqio.Dataset {
	rng := rand.New(rand.NewSource(seed))
	a := make([]string, ticks)
	b := make([]string, ticks)
	c := make([]string, ticks)
	state := "ON"
	for t := 0; t < ticks; t++ {
		if rng.Float64() < 0.15 {
			if state == "ON" {
				state = "OFF"
			} else {
				state = "ON"
			}
		}
		a[t] = state
		if t == 0 {
			b[t] = state
		} else {
			b[t] = a[t-1]
		}
		if rng.Float64() < 0.5 {
			c[t] = "ON"
		} else {
			c[t] = "OFF"
		}
	}
	return &seqio.Dataset{Sequences: []seqio.Sequence{
		{Sensor: "a", Events: a},
		{Sensor: "b", Events: b},
		{Sensor: "c", Events: c},
	}}
}

// fixture is the shared training corpus and crash-free reference model; the
// expensive part of every soak, built once per process.
var (
	fixOnce  sync.Once
	fixTrain *seqio.Dataset
	fixDev   *seqio.Dataset
	fixFw    *mdes.Framework
	fixModel *mdes.Model
	fixSum   uint64
	fixErr   error
)

func fixture() error {
	fixOnce.Do(func() {
		full := soakDataset(11, 220)
		train, dev, _, err := full.Split(150, 70)
		if err != nil {
			fixErr = err
			return
		}
		fw, err := mdes.New(soakConfig())
		if err != nil {
			fixErr = err
			return
		}
		model, err := fw.Train(context.Background(), train, dev)
		if err != nil {
			fixErr = err
			return
		}
		sum, err := modelChecksum(model)
		if err != nil {
			fixErr = err
			return
		}
		fixTrain, fixDev, fixFw, fixModel, fixSum = train, dev, fw, model, sum
	})
	return fixErr
}

// modelChecksum is the FNV-64a of the model's serialised form — weights,
// graph, languages, configuration — minus the per-pair wall-clock runtimes,
// which vary run to run by construction. Two models with equal checksums
// went through bit-identical training.
func modelChecksum(m *mdes.Model) (uint64, error) {
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		return 0, err
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		return 0, err
	}
	delete(doc, "runtimes")
	canon, err := json.Marshal(doc) // map marshalling sorts keys
	if err != nil {
		return 0, err
	}
	h := fnv.New64a()
	_, _ = h.Write(canon) // hash.Hash.Write never fails
	return h.Sum64(), nil
}

// standingFaults is the background fault mix for soak iterations: frequent
// enough to exercise every error path across a sweep, rare enough that
// workloads usually make progress between faults.
func standingFaults() faultfs.Faults {
	return faultfs.Faults{ShortWrite: 0.03, WriteENOSPC: 0.02, SyncFail: 0.03, RenameFail: 0.05}
}

// TrainSoakReport summarises one TrainSoak run.
type TrainSoakReport struct {
	Iterations int
	Crashes    int // attempts killed at the injected crash point
	Faulted    int // attempts aborted by a standing (non-crash) fault
	TornTails  int // resumes that found and dropped a torn journal record
	Resumed    int // pair models restored from journals, summed over attempts
	Checksum   uint64
}

// TrainSoak runs iters crash/resume cycles of checkpointed pair training:
// each iteration arms the crash point at a fresh random IO operation, lets
// the run die, recovers the filesystem, and resumes until training
// completes — then asserts the resumed model is bit-identical (FNV weight
// checksum) to the crash-free reference and that the journal holds exactly
// one intact record per pair. Any divergence returns an error naming the
// iteration and seed.
func TrainSoak(ctx context.Context, seed int64, iters int) (TrainSoakReport, error) {
	rep := TrainSoakReport{Iterations: iters}
	if err := fixture(); err != nil {
		return rep, err
	}
	rep.Checksum = fixSum
	const path = "ckpt/train.journal"

	// Probe run: count the IO operations of an uninterrupted checkpointed
	// run, so crash points sweep the whole op range.
	probe := faultfs.NewInject(seed, faultfs.Faults{})
	m, err := fixFw.TrainWithOptions(ctx, fixTrain, fixDev, mdes.TrainOptions{
		Checkpoint: path, FS: probe,
	})
	if err != nil {
		return rep, fmt.Errorf("chaos: probe train: %w", err)
	}
	if sum, err := modelChecksum(m); err != nil || sum != fixSum {
		return rep, fmt.Errorf("chaos: probe train diverged from reference (checksum %x vs %x): %v", sum, fixSum, err)
	}
	totalOps := probe.Ops()
	pairCount := len(fixTrain.Sequences) * (len(fixTrain.Sequences) - 1)

	rng := rand.New(rand.NewSource(seed))
	for it := 0; it < iters; it++ {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		ifs := faultfs.NewInject(seed*1_000_003+int64(it), standingFaults())
		ifs.CrashAfter(1 + rng.Int63n(totalOps))
		resume := false
		for attempt := 0; ; attempt++ {
			if attempt > 12 {
				return rep, fmt.Errorf("chaos: iteration %d: training did not converge in %d attempts", it, attempt)
			}
			if err := ctx.Err(); err != nil {
				return rep, err
			}
			var torn, sawResume bool
			var resumed int
			opts := mdes.TrainOptions{
				Checkpoint: path, Resume: resume, FS: ifs,
				Progress: func(p mdes.TrainProgress) {
					if p.Src == "" && !sawResume {
						sawResume = true
						torn = p.TornTail
						resumed = p.Resumed
					}
				},
			}
			m, err := fixFw.TrainWithOptions(ctx, fixTrain, fixDev, opts)
			resume = true
			if err != nil {
				if errors.Is(err, faultfs.ErrCrashed) {
					rep.Crashes++
				} else {
					rep.Faulted++
				}
				// Reboot: recover the disk and stop injecting standing
				// faults so the retry makes progress; the crash point stays
				// behind us.
				ifs.Recover()
				ifs.SetFaults(faultfs.Faults{})
				continue
			}
			if torn {
				rep.TornTails++
			}
			rep.Resumed += resumed
			// The run can finish with the disk crashed: the journal's deferred
			// Close discards its error, so a crash point landing on the final
			// close doesn't fail training. Every record was already fsynced,
			// so recovery must still find a complete journal — recover (and
			// stop injecting) before the audit reads it back.
			if ifs.Crashed() {
				rep.Crashes++
				ifs.Recover()
			}
			ifs.SetFaults(faultfs.Faults{})
			sum, err := modelChecksum(m)
			if err != nil {
				return rep, err
			}
			if sum != fixSum {
				return rep, fmt.Errorf("chaos: iteration %d: resumed model checksum %x != reference %x", it, sum, fixSum)
			}
			j, err := checkpoint.OpenFS(ifs, path)
			if err != nil {
				return rep, fmt.Errorf("chaos: iteration %d: reopen journal: %w", it, err)
			}
			n, torn2 := len(j.Records()), j.Torn()
			_ = j.Close() // read-only audit
			if n != pairCount || torn2 {
				return rep, fmt.Errorf("chaos: iteration %d: journal holds %d/%d records (torn=%v) after a complete run", it, n, pairCount, torn2)
			}
			break
		}
	}
	return rep, nil
}
