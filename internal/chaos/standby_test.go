package chaos

import (
	"context"
	"sort"
	"testing"
	"time"
)

func TestDiskLossFailoverSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	rep, err := DiskLossSoak(context.Background(), 5, soakIters(t))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("disk-loss soak: iters=%d promotions=%d shipsHome=%d net=%+v",
		rep.Iterations, rep.Promotions, rep.ShipsHome, rep.Net)
	if rep.Promotions == 0 {
		t.Fatal("no outage window was ever served from a standby copy; the soak exercised nothing")
	}
	if rep.ShipsHome == 0 {
		t.Fatal("no tenant ever shipped home to a wiped owner; the soak exercised nothing")
	}
	if rep.Net.Delays == 0 && rep.Net.Duplicates == 0 && rep.Net.TruncatedReq == 0 {
		t.Fatal("the fault injector never fired on the cluster path; the soak exercised nothing")
	}
	if len(rep.ReplLag) == 0 || len(rep.PromotionLatency) == 0 {
		t.Fatalf("no lag/latency samples collected: %d repl, %d promotion", len(rep.ReplLag), len(rep.PromotionLatency))
	}
}

func TestPartitionHealSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	rep, err := PartitionSoak(context.Background(), 6, soakIters(t))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("partition soak: iters=%d partitions=%d oneWay=%d flaps=%d promotions=%d net=%+v",
		rep.Iterations, rep.Partitions, rep.OneWay, rep.Flaps, rep.Promotions, rep.Net)
	if rep.Promotions == 0 {
		t.Fatal("no outage window was ever served from a standby copy; the soak exercised nothing")
	}
	if rep.Partitions == 0 || rep.Net.Partitioned == 0 {
		t.Fatal("no partition ever refused a round trip; the soak exercised nothing")
	}
	if rep.Iterations >= 10 && (rep.OneWay == 0 || rep.Flaps == 0) {
		t.Fatalf("seeded schedule never drew a one-way (%d) or flap (%d) window across %d iterations",
			rep.OneWay, rep.Flaps, rep.Iterations)
	}
}

// durationQuantile returns the q-th quantile of samples in milliseconds.
func durationQuantile(samples []time.Duration, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(q * float64(len(s)-1))
	return float64(s[idx]) / float64(time.Millisecond)
}

// BenchmarkStandbySoak runs disk-loss failover cycles and reports the
// replication-lag and promotion-latency distributions; the CI standby job
// feeds its output through cmd/benchjson into BENCH_standby.json.
func BenchmarkStandbySoak(b *testing.B) {
	var replLag, promotion []time.Duration
	for i := 0; i < b.N; i++ {
		rep, err := DiskLossSoak(context.Background(), int64(100+i), 1)
		if err != nil {
			b.Fatal(err)
		}
		replLag = append(replLag, rep.ReplLag...)
		promotion = append(promotion, rep.PromotionLatency...)
	}
	b.ReportMetric(durationQuantile(replLag, 0.50), "repl_lag_p50_ms")
	b.ReportMetric(durationQuantile(replLag, 0.99), "repl_lag_p99_ms")
	b.ReportMetric(durationQuantile(promotion, 0.50), "promotion_p50_ms")
	b.ReportMetric(durationQuantile(promotion, 0.99), "promotion_p99_ms")
}
