package chaos

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"mdes/internal/checkpoint"
	"mdes/internal/faultfs"
)

// JournalHandle is the journal surface the soak exercises; *checkpoint.Journal
// satisfies it. The indirection exists so the soak can also be pointed at a
// deliberately broken implementation and demonstrate that it catches the bug
// (see OpenJournalNoTruncate).
type JournalHandle interface {
	Records() []checkpoint.PairRecord
	Append(checkpoint.PairRecord) error
	Close() error
}

// JournalOpener opens (or reopens) a journal on fsys.
type JournalOpener func(fsys faultfs.FS, path string) (JournalHandle, error)

// OpenJournal is the production recovery path: checkpoint.OpenFS, which
// replays intact records and truncates a torn tail.
func OpenJournal(fsys faultfs.FS, path string) (JournalHandle, error) {
	return checkpoint.OpenFS(fsys, path)
}

// OpenJournalNoTruncate is a sabotaged recovery path for validating the soak
// itself: it replays intact records like the real one but skips the torn-tail
// truncate and appends at the raw end of file, so new records land after
// crash garbage and are unreachable to the frame parser. JournalSoak against
// it must fail — if it ever passes, the soak has lost its teeth.
func OpenJournalNoTruncate(fsys faultfs.FS, path string) (JournalHandle, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		_ = f.Close() // the read error is the one reported
		return nil, err
	}
	j := &rawJournal{f: f}
	payloads, _, _ := checkpoint.Frames(data)
	for _, p := range payloads {
		var rec checkpoint.PairRecord
		if err := json.Unmarshal(p, &rec); err != nil {
			break
		}
		j.recs = append(j.recs, rec)
	}
	// The bug under test: no Truncate(valid), no Seek(valid) — the write
	// position stays at raw EOF, beyond any torn tail.
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		_ = f.Close() // the seek error is the one reported
		return nil, err
	}
	return j, nil
}

// rawJournal is OpenJournalNoTruncate's handle.
type rawJournal struct {
	f    faultfs.File
	recs []checkpoint.PairRecord
}

func (j *rawJournal) Records() []checkpoint.PairRecord {
	return append([]checkpoint.PairRecord(nil), j.recs...)
}

func (j *rawJournal) Append(rec checkpoint.PairRecord) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if _, err := j.f.Write(checkpoint.AppendFrame(nil, payload)); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.recs = append(j.recs, rec)
	return nil
}

func (j *rawJournal) Close() error { return j.f.Close() }

// JournalSoakReport summarises one JournalSoak run.
type JournalSoakReport struct {
	Iterations int
	Crashes    int // iterations whose crash point fired mid-workload
	TornTails  int // recoveries that found more bytes than intact records
	Replayed   int // records replayed across all recoveries
}

// soakRecords builds the fixed record set every iteration appends: identity
// and scores vary per record so a replayed journal can be position-checked.
func soakRecords() []checkpoint.PairRecord {
	recs := make([]checkpoint.PairRecord, 10)
	for i := range recs {
		recs[i] = checkpoint.PairRecord{
			Src:     fmt.Sprintf("s%02d", i),
			Tgt:     fmt.Sprintf("t%02d", i),
			BLEU:    float64(i) * 7.5,
			Runtime: time.Duration(i+1) * time.Millisecond,
		}
	}
	return recs
}

func recEqual(a, b checkpoint.PairRecord) bool {
	return a.Src == b.Src && a.Tgt == b.Tgt && a.BLEU == b.BLEU && a.Runtime == b.Runtime
}

// JournalSoak runs iters crash/recover cycles of journal appending through
// open: append a fixed record sequence, crash at a random IO op, recover,
// reopen, and assert the journal is an exact prefix of the sequence covering
// every confirmed append (durability: nothing acknowledged is lost;
// integrity: nothing corrupt is replayed). The iteration then finishes the
// sequence and asserts a final reopen replays it exactly. Run it with
// OpenJournal to certify the production path, or OpenJournalNoTruncate to
// certify the soak catches broken recovery.
func JournalSoak(ctx context.Context, seed int64, iters int, open JournalOpener) (JournalSoakReport, error) {
	rep := JournalSoakReport{Iterations: iters}
	recs := soakRecords()

	// Probe: ops in one clean, fault-free iteration.
	probe := faultfs.NewInject(seed, faultfs.Faults{})
	j, err := open(probe, "j")
	if err != nil {
		return rep, fmt.Errorf("chaos: journal probe open: %w", err)
	}
	for _, rec := range recs {
		if err := j.Append(rec); err != nil {
			return rep, fmt.Errorf("chaos: journal probe append: %w", err)
		}
	}
	if err := j.Close(); err != nil {
		return rep, fmt.Errorf("chaos: journal probe close: %w", err)
	}
	totalOps := probe.Ops()

	rng := rand.New(rand.NewSource(seed))
	for it := 0; it < iters; it++ {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		ifs := faultfs.NewInject(seed*1_000_003+int64(it), standingFaults())
		ifs.CrashAfter(1 + rng.Int63n(totalOps))

		// Phase 1: append until the crash (or a standing fault) stops us.
		confirmed := 0
		if j, err := open(ifs, "j"); err == nil {
			for _, rec := range recs {
				if err := j.Append(rec); err != nil {
					break
				}
				confirmed++
			}
			_ = j.Close() // the process is "dying"; nothing left to flush
		}
		if ifs.Crashed() {
			rep.Crashes++
		}
		ifs.Recover()
		ifs.SetFaults(faultfs.Faults{})

		// Phase 2: recovery must replay an exact prefix covering every
		// confirmed append.
		j, err := open(ifs, "j")
		if err != nil {
			return rep, fmt.Errorf("chaos: iteration %d: reopen after crash: %w", it, err)
		}
		got := j.Records()
		rep.Replayed += len(got)
		if len(got) < confirmed {
			_ = j.Close()
			return rep, fmt.Errorf("chaos: iteration %d: %d confirmed appends but only %d replayed — acknowledged data lost", it, confirmed, len(got))
		}
		if len(got) > len(recs) {
			_ = j.Close()
			return rep, fmt.Errorf("chaos: iteration %d: replayed %d records, more than the %d ever written", it, len(got), len(recs))
		}
		for i, g := range got {
			if !recEqual(g, recs[i]) {
				_ = j.Close()
				return rep, fmt.Errorf("chaos: iteration %d: record %d replayed corrupt: got %s->%s, want %s->%s", it, i, g.Src, g.Tgt, recs[i].Src, recs[i].Tgt)
			}
		}
		if len(got) > confirmed {
			rep.TornTails++ // an in-flight record survived whole; allowed
		}

		// Phase 3: finish the run and audit the final journal.
		for i := len(got); i < len(recs); i++ {
			if err := j.Append(recs[i]); err != nil {
				_ = j.Close()
				return rep, fmt.Errorf("chaos: iteration %d: append after recovery: %w", it, err)
			}
		}
		if err := j.Close(); err != nil {
			return rep, fmt.Errorf("chaos: iteration %d: close after recovery: %w", it, err)
		}
		j2, err := open(ifs, "j")
		if err != nil {
			return rep, fmt.Errorf("chaos: iteration %d: final reopen: %w", it, err)
		}
		final := j2.Records()
		_ = j2.Close() // read-only audit
		if len(final) != len(recs) {
			return rep, fmt.Errorf("chaos: iteration %d: final journal replays %d/%d records — recovery lost the tail", it, len(final), len(recs))
		}
		for i, g := range final {
			if !recEqual(g, recs[i]) {
				return rep, fmt.Errorf("chaos: iteration %d: final record %d corrupt: got %s->%s", it, i, g.Src, g.Tgt)
			}
		}
	}
	return rep, nil
}
