package chaos

import (
	"context"
	"os"
	"strconv"
	"testing"
)

// soakIters returns the iteration budget: CHAOS_ITERS when set (the CI
// chaos-soak job pins it), otherwise 25 — enough for the crash sweep to land
// in every phase of each workload.
func soakIters(t *testing.T) int {
	t.Helper()
	if v := os.Getenv("CHAOS_ITERS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			t.Fatalf("bad CHAOS_ITERS=%q", v)
		}
		return n
	}
	return 25
}

func TestTrainCrashResumeSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	rep, err := TrainSoak(context.Background(), 1, soakIters(t))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("train soak: %+v", rep)
	if rep.Crashes == 0 {
		t.Fatal("crash point never fired; the soak exercised nothing")
	}
	if rep.Resumed == 0 {
		t.Fatal("no attempt ever resumed pairs from the journal; the soak exercised nothing")
	}
}

func TestJournalAppendRecoverSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	rep, err := JournalSoak(context.Background(), 2, soakIters(t), OpenJournal)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("journal soak: %+v", rep)
	if rep.Crashes == 0 {
		t.Fatal("crash point never fired; the soak exercised nothing")
	}
	if rep.Replayed == 0 {
		t.Fatal("no recovery ever replayed a record; the soak exercised nothing")
	}
}

// TestBrokenRecoveryIsCaught certifies the soak itself: recovery that skips
// the torn-tail truncate (appends land after crash garbage) must make
// JournalSoak fail. If this test ever finds the sabotaged path passing, the
// harness has lost its teeth.
func TestBrokenRecoveryIsCaught(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	rep, err := JournalSoak(context.Background(), 2, soakIters(t), OpenJournalNoTruncate)
	if err == nil {
		t.Fatalf("soak passed against recovery with no torn-tail truncate: %+v", rep)
	}
	t.Logf("broken recovery caught: %v", err)
}

func TestClusterKillReplicaSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	rep, err := ClusterSoak(context.Background(), 4, soakIters(t))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("cluster soak: %+v", rep)
	if rep.HardKills == 0 {
		t.Fatal("no iteration hard-killed a replica; the soak exercised nothing")
	}
	if rep.Drains == 0 || rep.Moved == 0 {
		t.Fatal("no iteration drained a replica's tenants; the soak exercised nothing")
	}
	if rep.Redirects == 0 {
		t.Fatal("the client never followed an ownership redirect; the soak exercised nothing")
	}
}

func TestServeCrashRestoreSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	rep, err := ServeSoak(context.Background(), 3, soakIters(t))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("serve soak: %+v", rep)
	if rep.Crashes == 0 {
		t.Fatal("crash point never fired; the soak exercised nothing")
	}
	if rep.Restored == 0 {
		t.Fatal("no tenant ever restored from a snapshot; the soak exercised nothing")
	}
}
