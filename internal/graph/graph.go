// Package graph implements the multivariate relationship graph (MVRG) of the
// paper (§II-A3, §II-B): a directed graph whose nodes are sensors and whose
// edges carry the BLEU translation score of the directional NMT model for
// that sensor pair. It supports the paper's analyses: BLEU-range subgraphs,
// popular-sensor extraction by in-degree, local subgraphs with popular
// sensors removed, degree distributions, and weakly connected components.
package graph

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Edge is one directional relationship i→j with its BLEU score s(i,j).
type Edge struct {
	Src, Tgt string
	Score    float64
}

// Graph is a directed, weighted multivariate relationship graph.
type Graph struct {
	nodes []string
	index map[string]int
	adj   map[int]map[int]float64 // src -> tgt -> score
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{index: make(map[string]int), adj: make(map[int]map[int]float64)}
}

// AddNode ensures a node exists and returns its index.
func (g *Graph) AddNode(name string) int {
	if i, ok := g.index[name]; ok {
		return i
	}
	i := len(g.nodes)
	g.nodes = append(g.nodes, name)
	g.index[name] = i
	return i
}

// AddEdge inserts (or overwrites) the directional edge src→tgt.
func (g *Graph) AddEdge(src, tgt string, score float64) {
	si := g.AddNode(src)
	ti := g.AddNode(tgt)
	m, ok := g.adj[si]
	if !ok {
		m = make(map[int]float64)
		g.adj[si] = m
	}
	m[ti] = score
}

// Score returns the edge weight s(src,tgt) if present.
func (g *Graph) Score(src, tgt string) (float64, bool) {
	si, ok := g.index[src]
	if !ok {
		return 0, false
	}
	ti, ok := g.index[tgt]
	if !ok {
		return 0, false
	}
	s, ok := g.adj[si][ti]
	return s, ok
}

// HasNode reports whether the sensor is present.
func (g *Graph) HasNode(name string) bool {
	_, ok := g.index[name]
	return ok
}

// Nodes returns node names in insertion order.
func (g *Graph) Nodes() []string { return append([]string(nil), g.nodes...) }

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int {
	var n int
	for _, m := range g.adj {
		n += len(m)
	}
	return n
}

// Edges returns all edges sorted by (src, tgt) for determinism.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.NumEdges())
	for si, m := range g.adj {
		for ti, s := range m {
			out = append(out, Edge{Src: g.nodes[si], Tgt: g.nodes[ti], Score: s})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Tgt < out[j].Tgt
	})
	return out
}

// InDegree returns the number of incoming edges of a node.
func (g *Graph) InDegree(name string) int {
	ti, ok := g.index[name]
	if !ok {
		return 0
	}
	var n int
	for _, m := range g.adj {
		if _, ok := m[ti]; ok {
			n++
		}
	}
	return n
}

// OutDegree returns the number of outgoing edges of a node.
func (g *Graph) OutDegree(name string) int {
	si, ok := g.index[name]
	if !ok {
		return 0
	}
	return len(g.adj[si])
}

// InDegrees returns every node's in-degree keyed by name.
func (g *Graph) InDegrees() map[string]int {
	out := make(map[string]int, len(g.nodes))
	for _, n := range g.nodes {
		out[n] = 0
	}
	for _, m := range g.adj {
		for ti := range m {
			out[g.nodes[ti]]++
		}
	}
	return out
}

// OutDegrees returns every node's out-degree keyed by name.
func (g *Graph) OutDegrees() map[string]int {
	out := make(map[string]int, len(g.nodes))
	for _, n := range g.nodes {
		out[n] = 0
	}
	for si, m := range g.adj {
		out[g.nodes[si]] += len(m)
	}
	return out
}

// Range is a half-open BLEU interval [Lo, Hi), except that Hi == 100 is
// treated inclusively so the paper's [90, 100] band captures perfect scores.
type Range struct {
	Lo, Hi float64
}

// Contains reports whether a score falls in the range.
func (r Range) Contains(score float64) bool {
	if r.Hi >= 100 {
		return score >= r.Lo && score <= 100
	}
	return score >= r.Lo && score < r.Hi
}

// String renders the range in the paper's notation.
func (r Range) String() string {
	if r.Hi >= 100 {
		return fmt.Sprintf("[%g, %g]", r.Lo, r.Hi)
	}
	return fmt.Sprintf("[%g, %g)", r.Lo, r.Hi)
}

// PaperRanges returns the score bands of Table I.
func PaperRanges() []Range {
	return []Range{{0, 60}, {60, 70}, {70, 80}, {80, 90}, {90, 100}}
}

// BestRange is the [80, 90) band the paper finds most informative for both
// datasets (§III-B, footnote 5).
func BestRange() Range { return Range{80, 90} }

// Subgraph returns the global subgraph for a BLEU range: edges whose score
// falls in the range, and only nodes with at least one such edge (paper
// §III-B1).
func (g *Graph) Subgraph(r Range) *Graph {
	out := New()
	for _, e := range g.Edges() {
		if r.Contains(e.Score) {
			out.AddEdge(e.Src, e.Tgt, e.Score)
		}
	}
	return out
}

// PopularSensors returns the sensors with in-degree >= minInDegree, sorted by
// descending in-degree then name (paper §III-B1: in-degree ≥ 100 marks
// sensors that are critical indicators of system health).
func (g *Graph) PopularSensors(minInDegree int) []string {
	in := g.InDegrees()
	var out []string
	for n, d := range in {
		if d >= minInDegree {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if in[out[i]] != in[out[j]] {
			return in[out[i]] > in[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

// WithoutNodes returns the graph with the given nodes and their incident
// edges removed; nodes left isolated are dropped. This converts a global
// subgraph into the paper's local subgraph (§III-B2).
func (g *Graph) WithoutNodes(names []string) *Graph {
	drop := make(map[string]struct{}, len(names))
	for _, n := range names {
		drop[n] = struct{}{}
	}
	out := New()
	for _, e := range g.Edges() {
		if _, d := drop[e.Src]; d {
			continue
		}
		if _, d := drop[e.Tgt]; d {
			continue
		}
		out.AddEdge(e.Src, e.Tgt, e.Score)
	}
	return out
}

// LocalSubgraph composes Subgraph and WithoutNodes(PopularSensors): the
// paper's local subgraph for one BLEU band.
func (g *Graph) LocalSubgraph(r Range, minInDegree int) *Graph {
	sub := g.Subgraph(r)
	return sub.WithoutNodes(sub.PopularSensors(minInDegree))
}

// ConnectedComponents returns the weakly connected components, each sorted by
// name, largest first (ties by first name).
func (g *Graph) ConnectedComponents() [][]string {
	parent := make([]int, len(g.nodes))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for si, m := range g.adj {
		for ti := range m {
			union(si, ti)
		}
	}
	groups := make(map[int][]string)
	for i, n := range g.nodes {
		r := find(i)
		groups[r] = append(groups[r], n)
	}
	out := make([][]string, 0, len(groups))
	for _, members := range groups {
		sort.Strings(members)
		out = append(out, members)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) > len(out[j])
		}
		return out[i][0] < out[j][0]
	})
	return out
}

// Undirected collapses the graph into symmetric weights: w(i,j) is the mean
// of the available directional scores. Used by community detection.
func (g *Graph) Undirected() map[string]map[string]float64 {
	out := make(map[string]map[string]float64, len(g.nodes))
	add := func(a, b string, w float64) {
		m, ok := out[a]
		if !ok {
			m = make(map[string]float64)
			out[a] = m
		}
		m[b] = w
	}
	for si, m := range g.adj {
		for ti, s := range m {
			a, b := g.nodes[si], g.nodes[ti]
			w := s
			if back, ok := g.adj[ti][si]; ok {
				w = (s + back) / 2
			}
			add(a, b, w)
			add(b, a, w)
		}
	}
	return out
}

// Stats summarises one BLEU band of the full graph — a row of Table I.
type Stats struct {
	Range                Range
	PctRelationships     float64 // share of all edges falling in the band
	NumSensors           int     // nodes with at least one edge in the band
	NumPopular           int     // popular sensors within the band subgraph
	EdgesWithoutPopular  int     // edges of the local subgraph
	TotalEdgesInSubgraph int
}

// BandStats computes Table I's row for each range over the full MVRG, using
// minInDegree as the popularity threshold.
func (g *Graph) BandStats(ranges []Range, minInDegree int) []Stats {
	total := g.NumEdges()
	out := make([]Stats, 0, len(ranges))
	for _, r := range ranges {
		sub := g.Subgraph(r)
		popular := sub.PopularSensors(minInDegree)
		local := sub.WithoutNodes(popular)
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(sub.NumEdges()) / float64(total)
		}
		out = append(out, Stats{
			Range:                r,
			PctRelationships:     pct,
			NumSensors:           sub.NumNodes(),
			NumPopular:           len(popular),
			EdgesWithoutPopular:  local.NumEdges(),
			TotalEdgesInSubgraph: sub.NumEdges(),
		})
	}
	return out
}

// DOT renders the graph in Graphviz format, highlighting the given popular
// nodes (drawn larger, like Fig 6).
func (g *Graph) DOT(name string, popular []string) string {
	pop := make(map[string]struct{}, len(popular))
	for _, p := range popular {
		pop[p] = struct{}{}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", name)
	for _, n := range g.nodes {
		if _, ok := pop[n]; ok {
			fmt.Fprintf(&sb, "  %q [width=1.5, penwidth=3];\n", n)
		} else {
			fmt.Fprintf(&sb, "  %q;\n", n)
		}
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&sb, "  %q -> %q [label=\"%.1f\"];\n", e.Src, e.Tgt, e.Score)
	}
	sb.WriteString("}\n")
	return sb.String()
}

// Modularity computes Newman modularity of a node partition over the
// undirected projection (weights ignored, multi-edges collapsed).
func (g *Graph) Modularity(partition map[string]int) float64 {
	und := g.Undirected()
	var degSum int // twice the undirected edge count; summed as an int so map order cannot perturb it
	deg := make(map[string]float64, len(und))
	for a, nb := range und {
		deg[a] = float64(len(nb))
		degSum += len(nb)
	}
	m := float64(degSum) / 2
	if m == 0 {
		return 0
	}
	// Q = (1/2m) Σ_ij [A_ij − k_i·k_j/2m] δ(c_i, c_j) over all ordered
	// node pairs, computed per community as (edges_in/m) − (Σ_deg/2m)².
	commDeg := make(map[int]float64)
	commEdges := make(map[int]float64)
	for _, n := range g.nodes {
		c, ok := partition[n]
		if !ok {
			continue
		}
		commDeg[c] += deg[n]
		for b := range und[n] {
			if cb, ok := partition[b]; ok && cb == c {
				commEdges[c]++ // counts each undirected edge twice
			}
		}
	}
	// Sum per-community terms in sorted order so Q is bit-identical run to
	// run regardless of map iteration order.
	comms := make([]int, 0, len(commDeg))
	for c := range commDeg {
		comms = append(comms, c)
	}
	sort.Ints(comms)
	var q float64
	for _, c := range comms {
		d := commDeg[c]
		q += commEdges[c]/(2*m) - (d/(2*m))*(d/(2*m))
	}
	return q
}

// AddEdgeChecked is AddEdge with validation: scores must be finite and in
// [0, 100], and self-loops are rejected.
func (g *Graph) AddEdgeChecked(src, tgt string, score float64) error {
	if src == tgt {
		return fmt.Errorf("graph: self-loop %q", src)
	}
	if math.IsNaN(score) || math.IsInf(score, 0) || score < 0 || score > 100 {
		return fmt.Errorf("graph: score %v for %s->%s outside [0,100]", score, src, tgt)
	}
	g.AddEdge(src, tgt, score)
	return nil
}
