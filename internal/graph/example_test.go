package graph_test

import (
	"fmt"

	"mdes/internal/graph"
)

func ExampleGraph_Subgraph() {
	g := graph.New()
	g.AddEdge("pump", "valve", 86)
	g.AddEdge("valve", "pump", 88)
	g.AddEdge("pump", "fan", 45)

	strong := g.Subgraph(graph.BestRange()) // [80, 90)
	for _, e := range strong.Edges() {
		fmt.Printf("%s -> %s (%.0f)\n", e.Src, e.Tgt, e.Score)
	}
	// Output:
	// pump -> valve (86)
	// valve -> pump (88)
}

func ExampleGraph_PopularSensors() {
	g := graph.New()
	for _, src := range []string{"a", "b", "c", "d"} {
		g.AddEdge(src, "hub", 85) // everyone translates into the hub
	}
	g.AddEdge("a", "b", 85)
	fmt.Println(g.PopularSensors(3))
	// Output:
	// [hub]
}
