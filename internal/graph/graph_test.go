package graph

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func buildSample() *Graph {
	g := New()
	g.AddEdge("a", "b", 85)
	g.AddEdge("b", "a", 88)
	g.AddEdge("a", "c", 92)
	g.AddEdge("c", "a", 95)
	g.AddEdge("b", "c", 45)
	g.AddEdge("d", "a", 83)
	g.AddEdge("d", "b", 81)
	return g
}

func TestAddAndScore(t *testing.T) {
	g := buildSample()
	if g.NumNodes() != 4 || g.NumEdges() != 7 {
		t.Fatalf("graph shape %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if s, ok := g.Score("a", "b"); !ok || s != 85 {
		t.Fatalf("Score(a,b) = %v %v", s, ok)
	}
	if _, ok := g.Score("a", "zzz"); ok {
		t.Fatal("missing edge must report !ok")
	}
	g.AddEdge("a", "b", 70) // overwrite
	if s, _ := g.Score("a", "b"); s != 70 {
		t.Fatalf("overwrite failed, got %v", s)
	}
	if !g.HasNode("d") || g.HasNode("x") {
		t.Fatal("HasNode wrong")
	}
}

func TestAddEdgeChecked(t *testing.T) {
	g := New()
	if err := g.AddEdgeChecked("a", "a", 50); err == nil {
		t.Fatal("self-loop must be rejected")
	}
	for _, bad := range []float64{-1, 101, math.NaN(), math.Inf(1)} {
		if err := g.AddEdgeChecked("a", "b", bad); err == nil {
			t.Fatalf("score %v must be rejected", bad)
		}
	}
	if err := g.AddEdgeChecked("a", "b", 0); err != nil {
		t.Fatalf("score 0 rejected: %v", err)
	}
	if err := g.AddEdgeChecked("a", "c", 100); err != nil {
		t.Fatalf("score 100 rejected: %v", err)
	}
}

func TestDegrees(t *testing.T) {
	g := buildSample()
	if g.InDegree("a") != 3 || g.OutDegree("a") != 2 {
		t.Fatalf("a degrees = %d/%d", g.InDegree("a"), g.OutDegree("a"))
	}
	if g.InDegree("d") != 0 || g.OutDegree("d") != 2 {
		t.Fatalf("d degrees = %d/%d", g.InDegree("d"), g.OutDegree("d"))
	}
	if g.InDegree("missing") != 0 || g.OutDegree("missing") != 0 {
		t.Fatal("missing node degrees must be 0")
	}
	ins := g.InDegrees()
	outs := g.OutDegrees()
	var sumIn, sumOut int
	for _, v := range ins {
		sumIn += v
	}
	for _, v := range outs {
		sumOut += v
	}
	if sumIn != g.NumEdges() || sumOut != g.NumEdges() {
		t.Fatalf("degree sums %d/%d != edges %d", sumIn, sumOut, g.NumEdges())
	}
}

func TestRangeSemantics(t *testing.T) {
	r := Range{80, 90}
	if !r.Contains(80) || r.Contains(90) || r.Contains(79.99) {
		t.Fatal("half-open range semantics wrong")
	}
	top := Range{90, 100}
	if !top.Contains(100) || !top.Contains(90) {
		t.Fatal("top band must be inclusive of 100")
	}
	if r.String() != "[80, 90)" || top.String() != "[90, 100]" {
		t.Fatalf("String() = %q / %q", r.String(), top.String())
	}
	if len(PaperRanges()) != 5 {
		t.Fatal("PaperRanges must have 5 bands")
	}
	if BestRange() != (Range{80, 90}) {
		t.Fatal("BestRange must be [80,90)")
	}
}

func TestSubgraph(t *testing.T) {
	g := buildSample()
	sub := g.Subgraph(Range{80, 90})
	// Edges: a->b 85, b->a 88, d->a 83, d->b 81.
	if sub.NumEdges() != 4 {
		t.Fatalf("subgraph edges = %d, want 4", sub.NumEdges())
	}
	if sub.HasNode("c") {
		t.Fatal("nodes without in-range edges must be dropped")
	}
	top := g.Subgraph(Range{90, 100})
	if top.NumEdges() != 2 || top.HasNode("b") {
		t.Fatalf("top subgraph wrong: %d edges", top.NumEdges())
	}
}

func TestPopularAndLocalSubgraph(t *testing.T) {
	g := buildSample()
	pop := g.PopularSensors(3)
	if len(pop) != 1 || pop[0] != "a" {
		t.Fatalf("PopularSensors(3) = %v", pop)
	}
	local := g.WithoutNodes(pop)
	if local.HasNode("a") {
		t.Fatal("popular node must be removed")
	}
	for _, e := range local.Edges() {
		if e.Src == "a" || e.Tgt == "a" {
			t.Fatal("edges incident to removed nodes must vanish")
		}
	}
	ls := g.LocalSubgraph(Range{80, 90}, 2)
	// In the [80,90) subgraph in-degrees: a:2 (from b,d), b:2 (from a,d).
	// Removing a and b leaves nothing.
	if ls.NumEdges() != 0 {
		t.Fatalf("LocalSubgraph edges = %d, want 0", ls.NumEdges())
	}
}

func TestConnectedComponents(t *testing.T) {
	g := New()
	g.AddEdge("a", "b", 80)
	g.AddEdge("c", "d", 80)
	g.AddEdge("d", "e", 80)
	g.AddNode("isolated")
	comps := g.ConnectedComponents()
	if len(comps) != 3 {
		t.Fatalf("components = %v", comps)
	}
	if len(comps[0]) != 3 || comps[0][0] != "c" {
		t.Fatalf("largest component = %v", comps[0])
	}
	if comps[2][0] != "isolated" {
		t.Fatalf("isolated node missing: %v", comps)
	}
}

func TestEdgesDeterministicOrder(t *testing.T) {
	g := buildSample()
	a := g.Edges()
	b := g.Edges()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Edges order must be deterministic")
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i-1].Src > a[i].Src {
			t.Fatal("Edges must be sorted by src")
		}
	}
}

func TestBandStats(t *testing.T) {
	g := buildSample()
	stats := g.BandStats(PaperRanges(), 3)
	var pct float64
	for _, s := range stats {
		pct += s.PctRelationships
	}
	if math.Abs(pct-100) > 1e-9 {
		t.Fatalf("band percentages sum to %v", pct)
	}
	// [80,90) has 4 of 7 edges.
	var band Stats
	for _, s := range stats {
		if s.Range == (Range{80, 90}) {
			band = s
		}
	}
	if band.TotalEdgesInSubgraph != 4 || band.NumSensors != 3 {
		t.Fatalf("band stats = %+v", band)
	}
	if band.NumPopular != 0 || band.EdgesWithoutPopular != 4 {
		t.Fatalf("band popular stats = %+v", band)
	}
}

func TestUndirectedAveragesScores(t *testing.T) {
	g := New()
	g.AddEdge("a", "b", 80)
	g.AddEdge("b", "a", 90)
	g.AddEdge("a", "c", 70)
	und := g.Undirected()
	if und["a"]["b"] != 85 || und["b"]["a"] != 85 {
		t.Fatalf("undirected weight = %v", und["a"]["b"])
	}
	if und["c"]["a"] != 70 {
		t.Fatalf("one-way edge weight = %v", und["c"]["a"])
	}
}

func TestModularity(t *testing.T) {
	// Two cliques joined by one edge: the natural partition has high
	// modularity, the merged partition lower.
	g := New()
	for _, e := range [][2]string{{"a", "b"}, {"b", "c"}, {"a", "c"}, {"x", "y"}, {"y", "z"}, {"x", "z"}, {"c", "x"}} {
		g.AddEdge(e[0], e[1], 85)
	}
	good := map[string]int{"a": 0, "b": 0, "c": 0, "x": 1, "y": 1, "z": 1}
	bad := map[string]int{"a": 0, "b": 0, "c": 0, "x": 0, "y": 0, "z": 0}
	qGood := g.Modularity(good)
	qBad := g.Modularity(bad)
	if qGood <= qBad {
		t.Fatalf("modularity ordering wrong: good %v <= bad %v", qGood, qBad)
	}
	if qGood < 0.2 {
		t.Fatalf("two-clique modularity too low: %v", qGood)
	}
	if q := New().Modularity(nil); q != 0 {
		t.Fatalf("empty graph modularity = %v", q)
	}
}

func TestDOTOutput(t *testing.T) {
	g := New()
	g.AddEdge("s1", "s2", 85.5)
	dot := g.DOT("test", []string{"s1"})
	for _, want := range []string{"digraph", `"s1" -> "s2"`, "85.5", "penwidth=3"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
}

// Property: subgraphs partition edges — each edge appears in exactly one
// paper band, and band membership respects the score.
func TestSubgraphPartitionQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(n uint8) bool {
		g := New()
		nodes := int(n)%8 + 2
		for i := 0; i < nodes; i++ {
			for j := 0; j < nodes; j++ {
				if i != j && rng.Float64() < 0.5 {
					g.AddEdge(name(i), name(j), rng.Float64()*100)
				}
			}
		}
		var total int
		for _, r := range PaperRanges() {
			sub := g.Subgraph(r)
			total += sub.NumEdges()
			for _, e := range sub.Edges() {
				if !r.Contains(e.Score) {
					return false
				}
			}
		}
		return total == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func name(i int) string { return string(rune('A' + i)) }
