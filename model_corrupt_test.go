package mdes

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"
)

// mutateModelJSON round-trips a saved model through raw JSON, letting a test
// corrupt one top-level field the way a truncated or hand-edited file would.
func mutateModelJSON(t *testing.T, m *Model, mutate func(map[string]json.RawMessage)) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	mutate(raw)
	out, err := json.Marshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewBuffer(out)
}

// TestLoadRejectsMissingConfig is the divide-by-zero regression: a model
// file with a missing (zero) config used to Load fine, and the first
// Stream.Push then panicked with an integer divide by zero because the
// sentence stride computed from the zero language config was 0. Load must
// reject the file instead.
func TestLoadRejectsMissingConfig(t *testing.T) {
	model := trainTiny(t)

	// Positive control: the unmodified file loads, and its stream pushes.
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := good.NewStream().Push(map[string]string{"a": "ON", "b": "ON", "c": "ON"}); err != nil {
		t.Fatalf("control stream push: %v", err)
	}

	corrupted := mutateModelJSON(t, model, func(raw map[string]json.RawMessage) {
		delete(raw, "config")
	})
	if _, err := Load(corrupted); !errors.Is(err, ErrCorruptModel) {
		t.Fatalf("config-less model: err = %v, want ErrCorruptModel", err)
	}
}

// TestLoadRejectsDanglingReferences covers edges and pairs that name sensors
// with no language — undetectable before, then a nil-map lookup or encode
// failure deep inside detection.
func TestLoadRejectsDanglingReferences(t *testing.T) {
	model := trainTiny(t)

	missingLang := mutateModelJSON(t, model, func(raw map[string]json.RawMessage) {
		var langs map[string]json.RawMessage
		if err := json.Unmarshal(raw["languages"], &langs); err != nil {
			t.Fatal(err)
		}
		delete(langs, "a")
		out, err := json.Marshal(langs)
		if err != nil {
			t.Fatal(err)
		}
		raw["languages"] = out
	})
	if _, err := Load(missingLang); !errors.Is(err, ErrCorruptModel) {
		t.Fatalf("dangling edge: err = %v, want ErrCorruptModel", err)
	}

	ghostPair := mutateModelJSON(t, model, func(raw map[string]json.RawMessage) {
		var pairs map[string]json.RawMessage
		if err := json.Unmarshal(raw["pairs"], &pairs); err != nil {
			t.Fatal(err)
		}
		var any json.RawMessage
		for _, st := range pairs {
			any = st
			break
		}
		pairs["ghost\x1fa"] = any
		out, err := json.Marshal(pairs)
		if err != nil {
			t.Fatal(err)
		}
		raw["pairs"] = out
	})
	if _, err := Load(ghostPair); !errors.Is(err, ErrCorruptModel) {
		t.Fatalf("ghost pair: err = %v, want ErrCorruptModel", err)
	}
}

// TestLoadRejectsOversizedAlphabet guards the loader against a persisted
// alphabet larger than the byte-rank encryption can represent: NewStream
// would rebuild a rank table with wrapped, colliding characters.
func TestLoadRejectsOversizedAlphabet(t *testing.T) {
	model := trainTiny(t)
	oversized := mutateModelJSON(t, model, func(raw map[string]json.RawMessage) {
		var langs map[string]json.RawMessage
		if err := json.Unmarshal(raw["languages"], &langs); err != nil {
			t.Fatal(err)
		}
		var pl map[string]json.RawMessage
		if err := json.Unmarshal(langs["a"], &pl); err != nil {
			t.Fatal(err)
		}
		wide := make([]string, 200)
		for i := range wide {
			wide[i] = string(rune('A' + i))
		}
		out, err := json.Marshal(wide)
		if err != nil {
			t.Fatal(err)
		}
		pl["alphabet"] = out
		if langs["a"], err = json.Marshal(pl); err != nil {
			t.Fatal(err)
		}
		if raw["languages"], err = json.Marshal(langs); err != nil {
			t.Fatal(err)
		}
	})
	if _, err := Load(oversized); !errors.Is(err, ErrCorruptModel) {
		t.Fatalf("oversized alphabet: err = %v, want ErrCorruptModel", err)
	}
}

// TestLoadRejectsMalformedPairKey keeps the pre-existing malformed-key check
// matchable via ErrCorruptModel.
func TestLoadRejectsMalformedPairKey(t *testing.T) {
	model := trainTiny(t)
	malformed := mutateModelJSON(t, model, func(raw map[string]json.RawMessage) {
		var pairs map[string]json.RawMessage
		if err := json.Unmarshal(raw["pairs"], &pairs); err != nil {
			t.Fatal(err)
		}
		var any json.RawMessage
		for _, st := range pairs {
			any = st
			break
		}
		pairs["nosep"] = any
		out, err := json.Marshal(pairs)
		if err != nil {
			t.Fatal(err)
		}
		raw["pairs"] = out
	})
	if _, err := Load(malformed); !errors.Is(err, ErrCorruptModel) {
		t.Fatalf("malformed pair key: err = %v, want ErrCorruptModel", err)
	}
}
