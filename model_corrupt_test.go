package mdes

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"
)

// mutateModelJSON round-trips a saved model through raw JSON, letting a test
// corrupt one top-level field the way a truncated or hand-edited file would.
func mutateModelJSON(t *testing.T, m *Model, mutate func(map[string]json.RawMessage)) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	mutate(raw)
	out, err := json.Marshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewBuffer(out)
}

// TestLoadRejectsMissingConfig is the divide-by-zero regression: a model
// file with a missing (zero) config used to Load fine, and the first
// Stream.Push then panicked with an integer divide by zero because the
// sentence stride computed from the zero language config was 0. Load must
// reject the file instead.
func TestLoadRejectsMissingConfig(t *testing.T) {
	model := trainTiny(t)

	// Positive control: the unmodified file loads, and its stream pushes.
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := good.NewStream().Push(map[string]string{"a": "ON", "b": "ON", "c": "ON"}); err != nil {
		t.Fatalf("control stream push: %v", err)
	}

	corrupted := mutateModelJSON(t, model, func(raw map[string]json.RawMessage) {
		delete(raw, "config")
	})
	if _, err := Load(corrupted); !errors.Is(err, ErrCorruptModel) {
		t.Fatalf("config-less model: err = %v, want ErrCorruptModel", err)
	}
}

// TestLoadRejectsDanglingReferences covers edges and pairs that name sensors
// with no language — undetectable before, then a nil-map lookup or encode
// failure deep inside detection.
func TestLoadRejectsDanglingReferences(t *testing.T) {
	model := trainTiny(t)

	missingLang := mutateModelJSON(t, model, func(raw map[string]json.RawMessage) {
		var langs map[string]json.RawMessage
		if err := json.Unmarshal(raw["languages"], &langs); err != nil {
			t.Fatal(err)
		}
		delete(langs, "a")
		out, err := json.Marshal(langs)
		if err != nil {
			t.Fatal(err)
		}
		raw["languages"] = out
	})
	if _, err := Load(missingLang); !errors.Is(err, ErrCorruptModel) {
		t.Fatalf("dangling edge: err = %v, want ErrCorruptModel", err)
	}

	ghostPair := mutateModelJSON(t, model, func(raw map[string]json.RawMessage) {
		var pairs map[string]json.RawMessage
		if err := json.Unmarshal(raw["pairs"], &pairs); err != nil {
			t.Fatal(err)
		}
		var any json.RawMessage
		for _, st := range pairs {
			any = st
			break
		}
		pairs["ghost\x1fa"] = any
		out, err := json.Marshal(pairs)
		if err != nil {
			t.Fatal(err)
		}
		raw["pairs"] = out
	})
	if _, err := Load(ghostPair); !errors.Is(err, ErrCorruptModel) {
		t.Fatalf("ghost pair: err = %v, want ErrCorruptModel", err)
	}
}

// TestLoadRejectsOversizedAlphabet guards the loader against a persisted
// alphabet larger than the byte-rank encryption can represent: NewStream
// would rebuild a rank table with wrapped, colliding characters.
func TestLoadRejectsOversizedAlphabet(t *testing.T) {
	model := trainTiny(t)
	oversized := mutateModelJSON(t, model, func(raw map[string]json.RawMessage) {
		var langs map[string]json.RawMessage
		if err := json.Unmarshal(raw["languages"], &langs); err != nil {
			t.Fatal(err)
		}
		var pl map[string]json.RawMessage
		if err := json.Unmarshal(langs["a"], &pl); err != nil {
			t.Fatal(err)
		}
		wide := make([]string, 200)
		for i := range wide {
			wide[i] = string(rune('A' + i))
		}
		out, err := json.Marshal(wide)
		if err != nil {
			t.Fatal(err)
		}
		pl["alphabet"] = out
		if langs["a"], err = json.Marshal(pl); err != nil {
			t.Fatal(err)
		}
		if raw["languages"], err = json.Marshal(langs); err != nil {
			t.Fatal(err)
		}
	})
	if _, err := Load(oversized); !errors.Is(err, ErrCorruptModel) {
		t.Fatalf("oversized alphabet: err = %v, want ErrCorruptModel", err)
	}
}

// TestLoadRejectsMalformedPairKey keeps the pre-existing malformed-key check
// matchable via ErrCorruptModel.
func TestLoadRejectsMalformedPairKey(t *testing.T) {
	model := trainTiny(t)
	malformed := mutateModelJSON(t, model, func(raw map[string]json.RawMessage) {
		var pairs map[string]json.RawMessage
		if err := json.Unmarshal(raw["pairs"], &pairs); err != nil {
			t.Fatal(err)
		}
		var any json.RawMessage
		for _, st := range pairs {
			any = st
			break
		}
		pairs["nosep"] = any
		out, err := json.Marshal(pairs)
		if err != nil {
			t.Fatal(err)
		}
		raw["pairs"] = out
	})
	if _, err := Load(malformed); !errors.Is(err, ErrCorruptModel) {
		t.Fatalf("malformed pair key: err = %v, want ErrCorruptModel", err)
	}
}

// mutateQuant rewrites the quant section of a quantized model's save file.
// The mutate callback receives the decoded section (precision + raw pairs)
// and returns the replacement; returning nil deletes the section.
func mutateQuant(t *testing.T, m *Model, mutate func(prec string, pairs map[string]json.RawMessage) any) *bytes.Buffer {
	t.Helper()
	return mutateModelJSON(t, m, func(raw map[string]json.RawMessage) {
		var q struct {
			Precision string                     `json:"precision"`
			Pairs     map[string]json.RawMessage `json:"pairs"`
		}
		if err := json.Unmarshal(raw["quant"], &q); err != nil {
			t.Fatal(err)
		}
		repl := mutate(q.Precision, q.Pairs)
		if repl == nil {
			delete(raw, "quant")
			return
		}
		out, err := json.Marshal(repl)
		if err != nil {
			t.Fatal(err)
		}
		raw["quant"] = out
	})
}

type quantSection struct {
	Precision string                     `json:"precision"`
	Pairs     map[string]json.RawMessage `json:"pairs"`
}

// TestLoadRejectsCorruptQuantSection covers the published-model failure
// modes: a quant section that parses as JSON but is internally inconsistent
// must fail Load with ErrCorruptModel rather than serve at a silently wrong
// or mixed precision.
func TestLoadRejectsCorruptQuantSection(t *testing.T) {
	model := trainTiny(t)
	if err := model.Quantize(PrecisionInt8); err != nil {
		t.Fatal(err)
	}
	defer model.Quantize(PrecisionF64)

	// Positive control: the untouched quantized file loads at int8.
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if good.ScorePrecision() != PrecisionInt8 {
		t.Fatalf("control precision = %v, want int8", good.ScorePrecision())
	}

	cases := []struct {
		name   string
		mutate func(prec string, pairs map[string]json.RawMessage) any
	}{
		{"unknown precision", func(prec string, pairs map[string]json.RawMessage) any {
			return quantSection{Precision: "f16", Pairs: pairs}
		}},
		{"f64 precision", func(prec string, pairs map[string]json.RawMessage) any {
			return quantSection{Precision: "f64", Pairs: pairs}
		}},
		{"missing pair", func(prec string, pairs map[string]json.RawMessage) any {
			for k := range pairs {
				delete(pairs, k)
				break
			}
			return quantSection{Precision: prec, Pairs: pairs}
		}},
		{"ghost pair", func(prec string, pairs map[string]json.RawMessage) any {
			var any json.RawMessage
			for _, st := range pairs {
				any = st
				break
			}
			pairs["ghost\x1fa"] = any
			return quantSection{Precision: prec, Pairs: pairs}
		}},
		{"malformed pair key", func(prec string, pairs map[string]json.RawMessage) any {
			var any json.RawMessage
			for k, st := range pairs {
				any = st
				delete(pairs, k)
				break
			}
			pairs["nosep"] = any
			return quantSection{Precision: prec, Pairs: pairs}
		}},
		{"pair precision mismatch", func(prec string, pairs map[string]json.RawMessage) any {
			for k, st := range pairs {
				var pair map[string]json.RawMessage
				if err := json.Unmarshal(st, &pair); err != nil {
					t.Fatal(err)
				}
				pair["precision"] = json.RawMessage(`"f32"`)
				out, err := json.Marshal(pair)
				if err != nil {
					t.Fatal(err)
				}
				pairs[k] = out
				break
			}
			return quantSection{Precision: prec, Pairs: pairs}
		}},
		{"pair config mismatch", func(prec string, pairs map[string]json.RawMessage) any {
			for k, st := range pairs {
				var pair map[string]json.RawMessage
				if err := json.Unmarshal(st, &pair); err != nil {
					t.Fatal(err)
				}
				var cfg map[string]json.RawMessage
				if err := json.Unmarshal(pair["config"], &cfg); err != nil {
					t.Fatal(err)
				}
				cfg["Hidden"] = json.RawMessage(`8`)
				out, err := json.Marshal(cfg)
				if err != nil {
					t.Fatal(err)
				}
				pair["config"] = out
				if pairs[k], err = json.Marshal(pair); err != nil {
					t.Fatal(err)
				}
				break
			}
			return quantSection{Precision: prec, Pairs: pairs}
		}},
		{"truncated tensor payload", func(prec string, pairs map[string]json.RawMessage) any {
			for k, st := range pairs {
				var pair struct {
					Config    json.RawMessage   `json:"config"`
					Precision string            `json:"precision"`
					Tensors   []json.RawMessage `json:"tensors"`
				}
				if err := json.Unmarshal(st, &pair); err != nil {
					t.Fatal(err)
				}
				if len(pair.Tensors) == 0 {
					t.Fatal("quant pair has no tensors")
				}
				var tensor map[string]json.RawMessage
				if err := json.Unmarshal(pair.Tensors[0], &tensor); err != nil {
					t.Fatal(err)
				}
				// Halve the payload, whichever representation it uses.
				for _, field := range []string{"f32", "q8", "scales"} {
					raw, ok := tensor[field]
					if !ok {
						continue
					}
					if field == "q8" {
						var b64 string
						if err := json.Unmarshal(raw, &b64); err != nil {
							t.Fatal(err)
						}
						out, err := json.Marshal(b64[:len(b64)/2&^3])
						if err != nil {
							t.Fatal(err)
						}
						tensor[field] = out
						continue
					}
					var vals []float32
					if err := json.Unmarshal(raw, &vals); err != nil {
						t.Fatal(err)
					}
					out, err := json.Marshal(vals[:len(vals)/2])
					if err != nil {
						t.Fatal(err)
					}
					tensor[field] = out
				}
				out, err := json.Marshal(tensor)
				if err != nil {
					t.Fatal(err)
				}
				pair.Tensors[0] = out
				if pairs[k], err = json.Marshal(pair); err != nil {
					t.Fatal(err)
				}
				break
			}
			return quantSection{Precision: prec, Pairs: pairs}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			corrupted := mutateQuant(t, model, tc.mutate)
			if _, err := Load(corrupted); !errors.Is(err, ErrCorruptModel) {
				t.Fatalf("err = %v, want ErrCorruptModel", err)
			}
		})
	}

	// Deleting the whole section is not corruption: the float64 weights are
	// intact, so the model loads and scores at f64.
	stripped := mutateQuant(t, model, func(string, map[string]json.RawMessage) any { return nil })
	plain, err := Load(stripped)
	if err != nil {
		t.Fatalf("quant-stripped model failed to load: %v", err)
	}
	if plain.ScorePrecision() != PrecisionF64 {
		t.Fatalf("quant-stripped precision = %v, want f64", plain.ScorePrecision())
	}
}
