module mdes

go 1.22
